#include "src/server/net.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blink {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Full write with EINTR retry; MSG_NOSIGNAL keeps a dead peer from raising
// SIGPIPE in a multi-session server.
Status WriteAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Full read with EINTR retry. Returns the byte count read, which is short
// only at EOF. A receive timeout armed via SetRecvTimeout surfaces as
// kDeadlineExceeded. A timeout while blocked on the FIRST byte of a frame
// leaves the stream synchronized (nothing was consumed) and reading may
// resume; one that fires mid-frame loses the consumed bytes, so callers that
// keep reading afterwards will see the remainder as garbage frames.
Result<size_t> ReadAll(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out");
      }
      return Status::Internal(Errno("recv"));
    }
    if (n == 0) {
      break;  // EOF
    }
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

OwnedFd& OwnedFd::operator=(OwnedFd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.Release();
  }
  return *this;
}

int OwnedFd::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void OwnedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                          uint16_t* bound_port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::Internal(Errno("socket"));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal(Errno("bind " + host + ":" + std::to_string(port)));
  }
  if (::listen(fd.get(), 64) != 0) {
    return Status::Internal(Errno("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      return Status::Internal(Errno("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  if (rc != 0) {
    return Status::NotFound("resolve '" + host + "': " + gai_strerror(rc));
  }
  Status last = Status::Internal("no addresses for '" + host + "'");
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    OwnedFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Status::Internal(Errno("socket"));
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      // PARTIAL frames are small and latency-sensitive; don't batch them.
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(found);
      return fd;
    }
    last = Status::Internal(Errno("connect " + host + ":" + std::to_string(port)));
  }
  ::freeaddrinfo(found);
  return last;
}

Status SetRecvTimeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) {
      tv.tv_usec = 1;  // "tiny but armed", not "disabled"
    }
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::Ok();
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>((n >> 24) & 0xFF),
                    static_cast<char>((n >> 16) & 0xFF),
                    static_cast<char>((n >> 8) & 0xFF), static_cast<char>(n & 0xFF)};
  BLINK_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::optional<std::string>> ReadFrame(int fd, uint32_t max_bytes) {
  char header[4];
  auto got = ReadAll(fd, header, sizeof(header));
  if (!got.ok()) {
    return got.status();
  }
  if (*got == 0) {
    return std::optional<std::string>{};  // clean EOF between frames
  }
  if (*got < sizeof(header)) {
    return Status::DataLoss("truncated frame: connection closed mid-frame header");
  }
  const uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
                     static_cast<uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > max_bytes) {
    return Status::ResourceExhausted("frame of " + std::to_string(n) +
                                     " bytes exceeds the " +
                                     std::to_string(max_bytes) + "-byte limit");
  }
  std::string payload(n, '\0');
  got = ReadAll(fd, payload.data(), n);
  if (!got.ok()) {
    return got.status();
  }
  if (*got < n) {
    return Status::DataLoss("truncated frame: connection closed mid-frame payload");
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace blink
