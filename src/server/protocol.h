// Wire-protocol message codec for the streaming query server.
//
// The normative specification lives in docs/PROTOCOL.md; this header is its
// implementation. Every frame is one JSON object with a "type" field naming
// one of the frame types (HELLO, QUERY, PARTIAL, FINAL, ERROR, CANCEL,
// GRANT, APPEND, APPEND_OK), carried over the length-prefixed transport of
// src/server/net.h.
//
// Encode* functions produce the serialized JSON payload for one frame;
// DecodeFrame parses an inbound payload into the tagged Frame union and is
// shared by both peers (the server decodes HELLO/QUERY/CANCEL, the client
// decodes HELLO/PARTIAL/FINAL/ERROR — direction is enforced by the session
// logic, not the codec). Doubles round-trip bit-exactly (src/util/json.h),
// which is what makes a FINAL frame's answer bit-identical to the in-process
// BlinkDB::Query result.
#ifndef BLINKDB_SERVER_PROTOCOL_H_
#define BLINKDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/exec/incremental.h"
#include "src/runtime/query_runtime.h"
#include "src/storage/value.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace blink {

// Bumped on any incompatible wire change; HELLO carries it in both
// directions and the server refuses mismatched majors (docs/PROTOCOL.md
// "Versioning").
constexpr int64_t kProtocolVersion = 2;

enum class FrameType {
  kHello,
  kQuery,
  kPartial,
  kFinal,
  kError,
  kCancel,
  kGrant,
  kAppend,
  kAppendOk,
};

// Wire name of a frame type ("HELLO", "QUERY", ...).
const char* FrameTypeName(FrameType type);

// Machine-readable ERROR codes (docs/PROTOCOL.md "Error codes").
namespace wire_error {
// The frame was not valid JSON, or lacked required fields. Session survives.
inline constexpr char kMalformedFrame[] = "MALFORMED_FRAME";
// "type" named no frame type this protocol version knows.
inline constexpr char kUnknownType[] = "UNKNOWN_TYPE";
// A known frame type that is illegal in this direction or session state
// (e.g. a PARTIAL sent to the server, or a second HELLO).
inline constexpr char kUnexpectedFrame[] = "UNEXPECTED_FRAME";
// HELLO version mismatch; the server closes the connection after sending.
inline constexpr char kUnsupportedProtocol[] = "UNSUPPORTED_PROTOCOL";
// A QUERY arrived before the HELLO handshake completed.
inline constexpr char kHandshakeRequired[] = "HANDSHAKE_REQUIRED";
// The server's admission queue is full; retry later (possibly with a wider
// bound). Before this PR the server also used BUSY for a second QUERY on a
// busy session — those now queue (docs/PROTOCOL.md §2).
inline constexpr char kBusy[] = "BUSY";
// The query waited in the admission queue past the server's deadline and was
// shed without executing.
inline constexpr char kDeadlineExceeded[] = "DEADLINE_EXCEEDED";
// The engine rejected or failed the query (bad SQL, unknown table, ...);
// `message` carries the engine status text.
inline constexpr char kQueryFailed[] = "QUERY_FAILED";
// The ingest layer rejected or failed an APPEND (read-only server, unknown
// table, schema mismatch, ...); `message` carries the engine status text.
inline constexpr char kAppendFailed[] = "APPEND_FAILED";
}  // namespace wire_error

struct HelloFrame {
  int64_t protocol_version = kProtocolVersion;
  // Free-form peer description ("blinkdb_cli/0.1", "blinkdb-server/0.5").
  std::string peer;
  // Server→client only: queryable table names, so a client can introspect.
  std::vector<std::string> tables;
  // Server→client only, optional: the shard role of this server. A worker
  // holding shard i of N announces shard_index = i, shard_count = N; a
  // non-sharded server omits both (shard_count 0 on the wire = "whole
  // table"). The coordinator validates these before scattering.
  uint64_t shard_index = 0;
  uint64_t shard_count = 0;
};

struct QueryFrame {
  // Client-chosen id echoed on every PARTIAL/FINAL/ERROR for this query.
  uint64_t id = 0;
  std::string sql;
  // Optional pacing fields (docs/PROTOCOL.md "Paced execution"); all-zero
  // means the classic self-stopping execution. When round_blocks > 0 the
  // server streams in rounds of that many blocks, never self-stops on an
  // error bound, and pauses after consuming its cumulative grant
  // (grant_blocks initially, extended by GRANT frames) until granted more
  // or cancelled. `confidence` sets the CI level of streamed estimates
  // (0 = server default).
  uint64_t round_blocks = 0;
  uint64_t grant_blocks = 0;
  double confidence = 0.0;
};

struct CancelFrame {
  uint64_t id = 0;
};

// Client→server: raises query `id`'s cumulative block budget to `blocks`
// (monotonic: a grant below the current budget is a no-op). Only meaningful
// for paced queries; unknown ids are ignored (the query may have finished).
struct GrantFrame {
  uint64_t id = 0;
  uint64_t blocks = 0;
};

struct PartialFrame {
  uint64_t id = 0;
  // Monotonically increasing per query, starting at 1.
  uint64_t seq = 0;
  // Real milliseconds the query waited in the server's admission queue
  // before execution began (0 when it ran immediately).
  double queue_ms = 0.0;
  // Answer-cache outcome of the execution streaming this partial ("resume"
  // or "miss"; cache hits skip streaming entirely). Empty when the server
  // runs without a cache. Decoders default absent fields (older servers).
  std::string cache;
  // The error bound the execution is honoring: the query's own, or the
  // widened rung the load-shedding ladder substituted. 0 for non-error
  // bounds.
  double effective_bound = 0.0;
  StreamProgress progress;
  QueryResult result;
};

struct FinalFrame {
  uint64_t id = 0;
  QueryResult result;
  ExecutionReport report;
};

// Client→server: streaming ingest (docs/PROTOCOL.md "APPEND"). The rows land
// as one sealed level-0 run of the table's leveled store; queries accepted
// after the acknowledging APPEND_OK observe them, queries already running
// keep their pinned level set (snapshot isolation). `columns` names the row
// layout and must match the table's schema, in order; each row carries one
// tagged value per column.
struct AppendFrame {
  uint64_t id = 0;
  std::string table;
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
};

// Server→client: acknowledges an APPEND after publication. `version` is the
// leveled store's manifest version with the new run visible.
struct AppendOkFrame {
  uint64_t id = 0;
  uint64_t rows_appended = 0;
  uint64_t version = 0;
};

struct ErrorFrame {
  // The offending query id; absent (has_id = false) for session-level errors
  // such as malformed frames.
  bool has_id = false;
  uint64_t id = 0;
  std::string code;
  std::string message;
};

// A decoded inbound frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::variant<HelloFrame, QueryFrame, CancelFrame, PartialFrame, FinalFrame,
               ErrorFrame, GrantFrame, AppendFrame, AppendOkFrame>
      payload;
};

// --- Encoding (struct → serialized JSON payload) -----------------------------

std::string EncodeHello(const HelloFrame& hello);
std::string EncodeQuery(const QueryFrame& query);
std::string EncodeCancel(const CancelFrame& cancel);
std::string EncodeGrant(const GrantFrame& grant);
std::string EncodeAppend(const AppendFrame& append);
std::string EncodeAppendOk(const AppendOkFrame& ok);
std::string EncodePartial(const PartialFrame& partial);
std::string EncodeFinal(const FinalFrame& final_frame);
std::string EncodeError(const ErrorFrame& error);

// --- Decoding ----------------------------------------------------------------

// Parses one frame payload. InvalidArgument covers both JSON syntax errors
// and structurally invalid frames (missing "type", missing required fields,
// wrong field types) — the MALFORMED_FRAME case; an unknown "type" string
// maps to Unimplemented — the UNKNOWN_TYPE case.
Result<Frame> DecodeFrame(std::string_view payload);

// Building blocks, exposed for tests: answers and reports round-trip through
// these.
JsonValue EncodeQueryResult(const QueryResult& result);
Result<QueryResult> DecodeQueryResult(const JsonValue& json);
JsonValue EncodeReport(const ExecutionReport& report);
Result<ExecutionReport> DecodeReport(const JsonValue& json);
JsonValue EncodeProgress(const StreamProgress& progress);
Result<StreamProgress> DecodeProgress(const JsonValue& json);

}  // namespace blink

#endif  // BLINKDB_SERVER_PROTOCOL_H_
