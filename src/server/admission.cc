#include "src/server/admission.h"

#include <algorithm>
#include <utility>

#include "src/server/protocol.h"

namespace blink {

AdmissionController::AdmissionController(const SampleStore* store,
                                         const ClusterModel* cluster,
                                         const RuntimeConfig& config, size_t workers,
                                         AdmissionOptions options)
    : options_(std::move(options)),
      pool_(store, cluster, config, std::max<size_t>(1, workers)) {
  workers_.reserve(pool_.size());
  for (size_t i = 0; i < pool_.size(); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() {
  std::deque<Ticket> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  ready_cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
  // Terminal-frame guarantee (docs/PROTOCOL.md §2): even at shutdown, no
  // admitted query vanishes silently.
  for (Ticket& ticket : orphaned) {
    ticket.shed(wire_error::kBusy, "server shutting down");
  }
}

size_t AdmissionController::RungFor(size_t waiting) const {
  if (options_.shed_ladder.empty() || options_.queue_depth == 0 || waiting == 0) {
    return 0;
  }
  // Linear occupancy bands: backlog 0..depth maps onto ladder.size()+1 bands,
  // so an empty queue widens nothing and a nearly full queue runs the top
  // rung.
  const size_t bands = options_.shed_ladder.size() + 1;
  return std::min(options_.shed_ladder.size(),
                  waiting * bands / (options_.queue_depth + 1));
}

bool AdmissionController::Submit(uint64_t client, Work work, Shed shed) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Room = waiting slots plus idle workers: a ticket an idle worker will
    // claim immediately never counts against the queue, so queue_depth = 0
    // still admits whenever a worker is free (and only then).
    if (stopping_ || queue_.size() >= options_.queue_depth + idle_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Ticket ticket;
    ticket.client = client;
    ticket.work = std::move(work);
    ticket.shed = std::move(shed);
    ticket.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(ticket));
  }
  ready_cv_.notify_one();
  return true;
}

void AdmissionController::WorkerLoop() {
  for (;;) {
    Ticket ticket;
    Decision decision;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_;
      ready_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      --idle_;
      if (stopping_) {
        return;
      }
      // Fairness: the oldest ticket whose client holds no worker goes first;
      // when every waiting client is already running somewhere, plain FIFO.
      auto it = queue_.begin();
      if (options_.fair) {
        for (auto probe = queue_.begin(); probe != queue_.end(); ++probe) {
          auto r = running_.find(probe->client);
          if (r == running_.end() || r->second == 0) {
            it = probe;
            break;
          }
        }
      }
      ticket = std::move(*it);
      queue_.erase(it);
      const auto now = std::chrono::steady_clock::now();
      decision.queue_seconds =
          std::chrono::duration<double>(now - ticket.enqueued).count();
      decision.shed_rung = RungFor(queue_.size());
      if (decision.shed_rung > 0) {
        decision.shed_bound = options_.shed_ladder[decision.shed_rung - 1];
      }
      if (options_.deadline_seconds > 0 &&
          decision.queue_seconds > options_.deadline_seconds) {
        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        ticket.shed(wire_error::kDeadlineExceeded,
                    "query waited past the admission deadline");
        continue;
      }
      ++running_[ticket.client];
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    if (decision.shed_rung > 0) {
      widened_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      RuntimePool::Lease lease = pool_.Acquire();
      ticket.work(lease.runtime(), decision);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto r = running_.find(ticket.client);
      if (r != running_.end() && --r->second == 0) {
        running_.erase(r);
      }
    }
  }
}

size_t AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

AdmissionStats AdmissionController::stats() const {
  AdmissionStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.widened = widened_.load(std::memory_order_relaxed);
  s.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace blink
