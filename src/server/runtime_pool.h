// A fixed pool of QueryRuntime instances shared by server sessions.
//
// Every session speaks the wire protocol independently, but queries execute
// on a bounded set of runtimes so N clients cannot spawn N thread pools: a
// session borrows a runtime for the duration of one query and returns it
// when the FINAL (or ERROR) frame is on the wire. All runtimes share one
// catalog / sample store / cluster model — the read-only serving state —
// while each owns its private scan thread pool, so concurrent queries never
// contend on executor internals. Acquire blocks when every runtime is busy,
// which is the server's admission control: excess queries queue in arrival
// order rather than degrading everyone.
#ifndef BLINKDB_SERVER_RUNTIME_POOL_H_
#define BLINKDB_SERVER_RUNTIME_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/runtime/query_runtime.h"

namespace blink {

class RuntimePool {
 public:
  // Builds `size` runtimes (at least 1) over the shared serving state.
  // `store` and `cluster` must outlive the pool.
  RuntimePool(const SampleStore* store, const ClusterModel* cluster,
              const RuntimeConfig& config, size_t size);

  // RAII lease: releases the runtime back to the pool on destruction.
  class Lease {
   public:
    Lease(RuntimePool* pool, const QueryRuntime* runtime)
        : pool_(pool), runtime_(runtime) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), runtime_(other.runtime_) {
      other.pool_ = nullptr;
      other.runtime_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    const QueryRuntime& runtime() const { return *runtime_; }

   private:
    RuntimePool* pool_;
    const QueryRuntime* runtime_;
  };

  // Blocks until a runtime is free (FIFO within the scheduler's fairness).
  Lease Acquire();

  size_t size() const { return runtimes_.size(); }
  // Currently idle runtimes (for tests and introspection).
  size_t available() const;

 private:
  friend class Lease;
  void Release(const QueryRuntime* runtime);

  std::vector<std::unique_ptr<QueryRuntime>> runtimes_;
  mutable std::mutex mu_;
  std::condition_variable free_cv_;
  std::vector<const QueryRuntime*> free_;
};

}  // namespace blink

#endif  // BLINKDB_SERVER_RUNTIME_POOL_H_
