#include "src/server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "src/sql/parser.h"
#include "src/util/logging.h"

namespace blink {

// One client connection: the reader thread lives here; queries run on a
// separate query thread so CANCEL (and malformed-frame ERRORs) can be
// serviced mid-query.
class BlinkServer::Session {
 public:
  Session(BlinkServer* server, OwnedFd fd)
      : server_(server), fd_(std::move(fd)) {
    reader_ = std::thread([this] { Serve(); });
  }

  ~Session() { Shutdown(); }

  // Unblocks the reader, cancels any in-flight query, joins both threads.
  void Shutdown() {
    closing_.store(true);
    cancel_.store(true);
    {
      // Serve()'s exit tail closes the fd under the same lock; never
      // shutdown() a descriptor another thread may be closing.
      std::lock_guard<std::mutex> lock(write_mu_);
      if (fd_.valid()) {
        ::shutdown(fd_.get(), SHUT_RDWR);
      }
    }
    if (reader_.joinable()) {
      reader_.join();
    }
    JoinQueryThread();
    fd_.Close();
  }

  bool finished() const { return finished_.load(); }

 private:
  void Serve() {
    for (;;) {
      auto frame_bytes = ReadFrame(fd_.get());
      if (!frame_bytes.ok() || !frame_bytes->has_value()) {
        break;  // EOF, peer reset, or an unsynchronizable framing error
      }
      auto frame = DecodeFrame(**frame_bytes);
      if (!frame.ok()) {
        ErrorFrame error;
        error.code = frame.status().code() == StatusCode::kUnimplemented
                         ? wire_error::kUnknownType
                         : wire_error::kMalformedFrame;
        error.message = frame.status().message();
        // Framing is length-prefixed, so the stream is still in sync: report
        // and keep serving this session.
        if (!Send(EncodeError(error))) {
          break;
        }
        continue;
      }
      if (!Dispatch(*frame)) {
        break;
      }
    }
    // Reader gone: no more CANCELs can arrive; stop any in-flight query so
    // its runtime lease frees up promptly, let it write its terminal frame,
    // then release the socket right away — a finished session must not hold
    // its fd until the next accept happens to reap it (EMFILE under
    // connect/disconnect churn). The Session object itself (and its
    // terminated threads) is reaped later; only the fd is scarce.
    cancel_.store(true);
    JoinQueryThread();
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      write_failed_ = true;  // no writer may touch the closed descriptor
      if (fd_.valid()) {
        ::shutdown(fd_.get(), SHUT_RDWR);
      }
      fd_.Close();
    }
    finished_.store(true);
  }

  // Returns false to close the session.
  bool Dispatch(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kHello:
        return OnHello(std::get<HelloFrame>(frame.payload));
      case FrameType::kQuery:
        return OnQuery(std::get<QueryFrame>(frame.payload));
      case FrameType::kCancel:
        OnCancel(std::get<CancelFrame>(frame.payload));
        return true;
      case FrameType::kPartial:
      case FrameType::kFinal:
      case FrameType::kError: {
        ErrorFrame error;
        error.code = wire_error::kUnexpectedFrame;
        error.message = std::string(FrameTypeName(frame.type)) +
                        " frames are server-to-client only";
        return Send(EncodeError(error));
      }
    }
    return false;
  }

  bool OnHello(const HelloFrame& hello) {
    if (greeted_) {
      // A repeated HELLO is survivable regardless of its contents
      // (docs/PROTOCOL.md §3.1) — never close an established session over it.
      ErrorFrame error;
      error.code = wire_error::kUnexpectedFrame;
      error.message = "HELLO already exchanged on this session";
      return Send(EncodeError(error));
    }
    if (hello.protocol_version != kProtocolVersion) {
      ErrorFrame error;
      error.code = wire_error::kUnsupportedProtocol;
      error.message = "server speaks protocol_version " +
                      std::to_string(kProtocolVersion) + ", client sent " +
                      std::to_string(hello.protocol_version);
      Send(EncodeError(error));
      return false;  // incompatible peer: close after reporting
    }
    HelloFrame reply;
    reply.protocol_version = kProtocolVersion;
    reply.peer = server_->options_.server_name;
    reply.tables = server_->db_.catalog().TableNames();
    if (!Send(EncodeHello(reply))) {
      return false;
    }
    greeted_ = true;
    return true;
  }

  bool OnQuery(const QueryFrame& query) {
    if (!greeted_) {
      ErrorFrame error;
      error.has_id = true;
      error.id = query.id;
      error.code = wire_error::kHandshakeRequired;
      error.message = "send HELLO before QUERY";
      return Send(EncodeError(error));
    }
    if (query_running_.load()) {
      ErrorFrame error;
      error.has_id = true;
      error.id = query.id;
      error.code = wire_error::kBusy;
      error.message = "a query is already running on this session";
      return Send(EncodeError(error));
    }
    JoinQueryThread();  // reap the previous, already-finished query thread
    cancel_.store(false);
    active_query_id_.store(query.id);
    query_running_.store(true);
    query_thread_ = std::thread([this, query] { RunQuery(query); });
    return true;
  }

  void OnCancel(const CancelFrame& cancel) {
    // Only the active query can be cancelled; a CANCEL racing its FINAL (or
    // naming a finished/unknown id) is a documented no-op.
    if (query_running_.load() && active_query_id_.load() == cancel.id) {
      cancel_.store(true);
    }
  }

  // Runs on the query thread: borrow a runtime, execute, stream frames.
  void RunQuery(const QueryFrame& query) {
    uint64_t seq = 0;
    ProgressCallback progress = [this, &query, &seq](const QueryResult& partial,
                                                     const StreamProgress& p) {
      if (p.final_batch) {
        return;  // the terminal answer travels in the FINAL frame instead
      }
      PartialFrame frame;
      frame.id = query.id;
      frame.seq = ++seq;
      frame.progress = p;
      frame.result = partial;
      const std::string payload = EncodePartial(frame);
      if (payload.size() > kMaxFrameBytes) {
        --seq;  // an oversized partial is skipped, not a dead client
        return;
      }
      if (!Send(payload)) {
        // Client unreachable (or its write timed out): stop scanning for it
        // (§4.4 — a dead session must not keep consuming blocks).
        cancel_.store(true);
      }
    };

    auto answer = Execute(query.sql, std::move(progress));
    // Clear the BUSY state before the terminal frame hits the wire: a client
    // that pipelines its next QUERY right behind our FINAL must not be
    // rejected (OnQuery joins this thread, so frame order is preserved).
    query_running_.store(false);
    if (answer.ok()) {
      FinalFrame frame;
      frame.id = query.id;
      frame.result = std::move(answer.value().result);
      frame.report = std::move(answer.value().report);
      const std::string payload = EncodeFinal(frame);
      if (payload.size() <= kMaxFrameBytes) {
        Send(payload);
      } else {
        // "FINAL or ERROR — never neither" (docs/PROTOCOL.md §2): a result
        // too large for one frame still terminates the query explicitly.
        ErrorFrame error;
        error.has_id = true;
        error.id = query.id;
        error.code = wire_error::kQueryFailed;
        error.message = "result exceeds the frame size limit";
        Send(EncodeError(error));
      }
    } else {
      ErrorFrame error;
      error.has_id = true;
      error.id = query.id;
      error.code = wire_error::kQueryFailed;
      error.message = answer.status().ToString();
      Send(EncodeError(error));
    }
  }

  // Parse + resolve against the shared catalog (the same Resolve the
  // in-process Query path uses), then execute on a leased runtime with this
  // session's cancel flag threaded into the plan driver.
  Result<ApproxAnswer> Execute(const std::string& sql, ProgressCallback progress) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) {
      return stmt.status();
    }
    auto tables = server_->db_.Resolve(*stmt);
    if (!tables.ok()) {
      return tables.status();
    }
    RuntimePool::Lease lease = server_->pool_->Acquire();
    return lease.runtime().Execute(
        *stmt, tables->fact->name, tables->fact->table, tables->fact->scale_factor,
        tables->dim != nullptr ? &tables->dim->table : nullptr, std::move(progress),
        &cancel_);
  }

  // Serialized frame write; false once the peer is unreachable. A failed
  // write may have left a frame half-written (e.g. a send timeout partway
  // through), after which the stream is unsynchronizable — latch the
  // failure so no later frame is ever appended to the torn one.
  bool Send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (closing_.load() || write_failed_) {
      return false;
    }
    if (!WriteFrame(fd_.get(), payload).ok()) {
      write_failed_ = true;
      return false;
    }
    return true;
  }

  void JoinQueryThread() {
    if (query_thread_.joinable()) {
      query_thread_.join();
    }
  }

  BlinkServer* server_;
  OwnedFd fd_;
  std::thread reader_;
  std::thread query_thread_;
  std::mutex write_mu_;
  bool write_failed_ = false;  // guarded by write_mu_
  bool greeted_ = false;
  std::atomic<bool> closing_{false};
  std::atomic<bool> finished_{false};
  std::atomic<bool> query_running_{false};
  std::atomic<uint64_t> active_query_id_{0};
  std::atomic<bool> cancel_{false};
};

BlinkServer::BlinkServer(const BlinkDB& db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

BlinkServer::~BlinkServer() { Stop(); }

Status BlinkServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  pool_ = std::make_unique<RuntimePool>(&db_.samples(), &db_.cluster(),
                                        options_.runtime,
                                        options_.max_concurrent_queries);
  auto listener = ListenTcp(options_.host, options_.port, &port_);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(listener.value());
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  BLINK_LOG(kInfo) << "blinkdb server listening on " << options_.host << ":" << port_;
  return Status::Ok();
}

void BlinkServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Unblock accept(), then tear down every session (cancels their queries).
  ::shutdown(listener_.get(), SHUT_RDWR);
  listener_.Close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  sessions.clear();  // ~Session shuts each down and joins its threads
}

void BlinkServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) {
        return;
      }
      if (errno != EINTR && errno != ECONNABORTED) {
        // Persistent failure (EMFILE/ENFILE under fd pressure): back off
        // instead of hot-looping at 100% CPU until fds free up.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.write_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.write_timeout_seconds;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    sessions_accepted_.fetch_add(1);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Opportunistically reap sessions whose reader already exited, so a
    // long-lived server does not accumulate dead connections.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->finished()) {
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    sessions_.push_back(std::make_unique<Session>(this, OwnedFd(fd)));
  }
}

}  // namespace blink
