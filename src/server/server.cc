#include "src/server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/sql/parser.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace blink {

// One client connection: the reader thread lives here; queries are submitted
// to the server's admission queue and execute on its worker threads, so
// CANCEL (and malformed-frame ERRORs) can be serviced mid-query and several
// queries from one session may be in flight (queued or running) at once.
class BlinkServer::Session {
 public:
  // One in-flight query: the cancel flag the plan driver polls, plus — for
  // paced (round_blocks > 0) queries — the grant gate. The execution thread
  // pauses on `cv` after each streamed round once it has consumed its
  // cumulative `granted` blocks; GRANT frames raise the budget (monotonic)
  // and CANCEL / session teardown wake the gate so a paused query always
  // unwinds to its FINAL.
  struct Job {
    std::atomic<bool> cancel{false};
    std::mutex mu;
    std::condition_variable cv;
    uint64_t granted = 0;  // guarded by mu
    bool paced = false;
  };

  Session(BlinkServer* server, OwnedFd fd, uint64_t id)
      : server_(server), fd_(std::move(fd)), id_(id) {
    reader_ = std::thread([this] { Serve(); });
  }

  ~Session() { Shutdown(); }

  // Unblocks the reader, cancels every in-flight query, waits for their
  // terminal frames, joins the reader.
  void Shutdown() {
    closing_.store(true);
    CancelAllQueries();
    {
      // Serve()'s exit tail closes the fd under the same lock; never
      // shutdown() a descriptor another thread may be closing.
      std::lock_guard<std::mutex> lock(write_mu_);
      if (fd_.valid()) {
        ::shutdown(fd_.get(), SHUT_RDWR);
      }
    }
    if (reader_.joinable()) {
      reader_.join();
    }
    AwaitQueries();
    fd_.Close();
  }

  bool finished() const { return finished_.load(); }

 private:
  void Serve() {
    // Idle-timeout the reader: SO_RCVTIMEO bounds every blocked recv, and a
    // timeout that fires while the session has no queries in flight closes
    // it — a half-open client must not pin this thread forever.
    if (server_->options_.idle_read_timeout_seconds > 0) {
      SetRecvTimeout(fd_.get(), server_->options_.idle_read_timeout_seconds);
    }
    for (;;) {
      auto frame_bytes = ReadFrame(fd_.get());
      if (!frame_bytes.ok() &&
          frame_bytes.status().code() == StatusCode::kDeadlineExceeded) {
        if (HasOutstanding()) {
          continue;  // quiet client waiting on its FINAL: re-arm and keep reading
        }
        break;  // idle past the deadline: close the session
      }
      if (!frame_bytes.ok() || !frame_bytes->has_value()) {
        break;  // EOF, peer reset, or an unsynchronizable framing error
      }
      auto frame = DecodeFrame(**frame_bytes);
      if (!frame.ok()) {
        ErrorFrame error;
        error.code = frame.status().code() == StatusCode::kUnimplemented
                         ? wire_error::kUnknownType
                         : wire_error::kMalformedFrame;
        error.message = frame.status().message();
        // Framing is length-prefixed, so the stream is still in sync: report
        // and keep serving this session.
        if (!Send(EncodeError(error))) {
          break;
        }
        continue;
      }
      if (!Dispatch(*frame)) {
        break;
      }
    }
    // Reader gone: no more CANCELs can arrive; stop the in-flight queries so
    // their admission workers free up promptly, let them write their
    // terminal frames, then release the socket right away — a finished
    // session must not hold its fd until the next accept happens to reap it
    // (EMFILE under connect/disconnect churn). The Session object itself
    // (and its terminated reader) is reaped later; only the fd is scarce.
    CancelAllQueries();
    AwaitQueries();
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      write_failed_ = true;  // no writer may touch the closed descriptor
      if (fd_.valid()) {
        ::shutdown(fd_.get(), SHUT_RDWR);
      }
      fd_.Close();
    }
    finished_.store(true);
  }

  // Returns false to close the session.
  bool Dispatch(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kHello:
        return OnHello(std::get<HelloFrame>(frame.payload));
      case FrameType::kQuery:
        return OnQuery(std::get<QueryFrame>(frame.payload));
      case FrameType::kCancel:
        OnCancel(std::get<CancelFrame>(frame.payload));
        return true;
      case FrameType::kGrant:
        OnGrant(std::get<GrantFrame>(frame.payload));
        return true;
      case FrameType::kAppend:
        return OnAppend(std::get<AppendFrame>(frame.payload));
      case FrameType::kPartial:
      case FrameType::kFinal:
      case FrameType::kError:
      case FrameType::kAppendOk: {
        ErrorFrame error;
        error.code = wire_error::kUnexpectedFrame;
        error.message = std::string(FrameTypeName(frame.type)) +
                        " frames are server-to-client only";
        return Send(EncodeError(error));
      }
    }
    return false;
  }

  bool OnHello(const HelloFrame& hello) {
    if (greeted_) {
      // A repeated HELLO is survivable regardless of its contents
      // (docs/PROTOCOL.md §3.1) — never close an established session over it.
      ErrorFrame error;
      error.code = wire_error::kUnexpectedFrame;
      error.message = "HELLO already exchanged on this session";
      return Send(EncodeError(error));
    }
    if (hello.protocol_version != kProtocolVersion) {
      ErrorFrame error;
      error.code = wire_error::kUnsupportedProtocol;
      error.message = "server speaks protocol_version " +
                      std::to_string(kProtocolVersion) + ", client sent " +
                      std::to_string(hello.protocol_version);
      Send(EncodeError(error));
      return false;  // incompatible peer: close after reporting
    }
    HelloFrame reply;
    reply.protocol_version = kProtocolVersion;
    reply.peer = server_->options_.server_name;
    reply.tables = server_->db_.catalog().TableNames();
    reply.shard_index = server_->options_.shard_index;
    reply.shard_count = server_->options_.shard_count;
    if (!Send(EncodeHello(reply))) {
      return false;
    }
    greeted_ = true;
    return true;
  }

  bool OnQuery(const QueryFrame& query) {
    if (!greeted_) {
      ErrorFrame error;
      error.has_id = true;
      error.id = query.id;
      error.code = wire_error::kHandshakeRequired;
      error.message = "send HELLO before QUERY";
      return Send(EncodeError(error));
    }
    auto job = std::make_shared<Job>();
    job->paced = query.round_blocks > 0;
    job->granted = query.grant_blocks;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      if (jobs_.count(query.id) != 0) {
        lock.unlock();
        // Ids name queries on the wire (CANCEL, frame routing); a duplicate
        // while the first is in flight would be ambiguous.
        ErrorFrame error;
        error.has_id = true;
        error.id = query.id;
        error.code = wire_error::kBusy;
        error.message = "query id is already in flight on this session";
        return Send(EncodeError(error));
      }
      jobs_.emplace(query.id, job);
      ++outstanding_;
    }
    const bool admitted = server_->admission_->Submit(
        id_,
        [this, query, job](const QueryRuntime& runtime,
                           const AdmissionController::Decision& decision) {
          RunQuery(query, runtime, decision, job.get());
          FinishJob(query.id);
        },
        [this, query](const char* code, const std::string& message) {
          // Shed without executing (deadline, or shutdown drain): the query
          // still gets its terminal frame.
          ErrorFrame error;
          error.has_id = true;
          error.id = query.id;
          error.code = code;
          error.message = message;
          Send(EncodeError(error));
          FinishJob(query.id);
        });
    if (!admitted) {
      FinishJob(query.id);
      ErrorFrame error;
      error.has_id = true;
      error.id = query.id;
      error.code = wire_error::kBusy;
      error.message = "admission queue is full";
      return Send(EncodeError(error));
    }
    return true;
  }

  void OnCancel(const CancelFrame& cancel) {
    // Queued and running queries alike; a CANCEL racing its FINAL (or naming
    // a finished/unknown id) is a documented no-op. The grant-gate notify
    // wakes a paused paced query so it unwinds to its FINAL immediately.
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(cancel.id);
    if (it != jobs_.end()) {
      it->second->cancel.store(true);
      it->second->cv.notify_all();
    }
  }

  void OnGrant(const GrantFrame& grant) {
    // Raises the query's cumulative block budget (monotonic — a stale or
    // smaller grant is a no-op). Unknown ids are ignored: the query may have
    // finished, and GRANT/FINAL races are inherent (docs/PROTOCOL.md).
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(grant.id);
    if (it != jobs_.end()) {
      Job& job = *it->second;
      {
        std::lock_guard<std::mutex> job_lock(job.mu);
        job.granted = std::max(job.granted, grant.blocks);
      }
      job.cv.notify_all();
    }
  }

  // Runs on the reader thread — appends on a session are therefore ordered
  // against its later QUERY frames: a query sent after the APPEND_OK always
  // observes the appended rows, one sent before never does (the leveled
  // store's snapshot pinning). Lands the rows as one sealed level-0 run,
  // then runs one maintenance tick so merge debt is paid by the writer.
  bool OnAppend(const AppendFrame& append) {
    auto fail = [&](const std::string& message) {
      ErrorFrame error;
      error.has_id = true;
      error.id = append.id;
      error.code = wire_error::kAppendFailed;
      error.message = message;
      return Send(EncodeError(error));
    };
    if (!greeted_) {
      ErrorFrame error;
      error.has_id = true;
      error.id = append.id;
      error.code = wire_error::kHandshakeRequired;
      error.message = "send HELLO before APPEND";
      return Send(EncodeError(error));
    }
    BlinkDB* db = server_->mutable_db_;
    if (db == nullptr) {
      return fail("server is read-only");
    }
    const TableEntry* entry = db->catalog().Find(append.table);
    if (entry == nullptr) {
      return fail("table '" + append.table + "' not registered");
    }
    const Schema& schema = entry->table.schema();
    if (append.columns.size() != schema.num_columns()) {
      return fail("APPEND carries " + std::to_string(append.columns.size()) +
                  " columns; table '" + entry->name + "' has " +
                  std::to_string(schema.num_columns()));
    }
    for (size_t i = 0; i < append.columns.size(); ++i) {
      if (AsciiToLower(append.columns[i]) != AsciiToLower(schema.column(i).name)) {
        return fail("APPEND column " + std::to_string(i) + " is '" +
                    append.columns[i] + "'; table schema has '" +
                    schema.column(i).name + "'");
      }
    }
    Table rows(schema);
    rows.Reserve(append.rows.size());
    for (const auto& row : append.rows) {
      if (Status s = rows.AppendRow(row); !s.ok()) {
        return fail(s.ToString());
      }
    }
    auto version = db->Append(entry->name, std::move(rows));
    if (!version.ok()) {
      return fail(version.status().ToString());
    }
    // One synchronous merge step: the writer pays for compaction, so query
    // latency stays flat while a client streams many small batches.
    if (auto merged = db->MaintenanceTick(entry->name); !merged.ok()) {
      return fail(merged.status().ToString());
    }
    AppendOkFrame ok;
    ok.id = append.id;
    ok.rows_appended = append.rows.size();
    ok.version = version.value();
    return Send(EncodeAppendOk(ok));
  }

  // Runs on an admission worker thread: parse, resolve, apply the shed
  // decision, execute on the worker's runtime, stream frames.
  void RunQuery(const QueryFrame& query, const QueryRuntime& runtime,
                const AdmissionController::Decision& decision, Job* job) {
    uint64_t seq = 0;
    const double queue_ms = decision.queue_seconds * 1000.0;
    double effective_bound = 0.0;
    const bool paced = job->paced;
    std::atomic<bool>* cancel = &job->cancel;

    auto answer = [&]() -> Result<ApproxAnswer> {
      auto stmt = ParseSelect(query.sql);
      if (!stmt.ok()) {
        return stmt.status();
      }
      auto tables = server_->db_.Resolve(*stmt);
      if (!tables.ok()) {
        return tables.status();
      }
      if (paced) {
        // Paced (coordinator-driven) execution: the worker streams its
        // largest resolution in coordinator-sized rounds and never
        // self-stops — a target error of 0 disables the stopping rule, so
        // the grant gate below is the only pacing. The coordinator owns the
        // joint stopping decision across shards (§4.3); any bound clause in
        // the scattered SQL was already stripped by it.
        stmt->bounds.kind = QueryBounds::Kind::kError;
        stmt->bounds.error = 0.0;
        stmt->bounds.relative = true;
        stmt->bounds.confidence =
            query.confidence > 0 ? query.confidence
                                 : server_->options_.runtime.default_confidence;
      }
      // Load shedding: under queue pressure a relative error bound widens to
      // the ladder rung (never narrows) — a coarser answer now instead of
      // BUSY. Absolute bounds are column-scaled, so the relative ladder
      // cannot be compared against them and leaves them untouched. Paced
      // queries are exempt: widening their 0 target would make the worker
      // self-stop and break the coordinator's pacing contract.
      if (!paced && decision.shed_bound > 0.0 &&
          stmt->bounds.kind == QueryBounds::Kind::kError && stmt->bounds.relative) {
        stmt->bounds.error = std::max(stmt->bounds.error, decision.shed_bound);
      }
      if (!paced && stmt->bounds.kind == QueryBounds::Kind::kError) {
        effective_bound = stmt->bounds.error;
      }
      ProgressCallback progress = [this, &query, &seq, queue_ms, &effective_bound,
                                   paced, job, cancel](const QueryResult& partial,
                                                       const StreamProgress& p) {
        if (p.final_batch) {
          return;  // the terminal answer travels in the FINAL frame instead
        }
        PartialFrame frame;
        frame.id = query.id;
        frame.seq = ++seq;
        frame.queue_ms = queue_ms;
        frame.cache = p.cache;
        frame.effective_bound = effective_bound;
        frame.progress = p;
        frame.result = partial;
        const std::string payload = EncodePartial(frame);
        if (payload.size() > kMaxFrameBytes) {
          --seq;  // an oversized partial is skipped, not a dead client
          return;
        }
        if (!Send(payload)) {
          // Client unreachable (or its write timed out): stop scanning for
          // it (§4.4 — a dead session must not keep consuming blocks).
          cancel->store(true);
        }
        if (paced) {
          // Grant gate: pause after the PARTIAL is on the wire once the
          // cumulative grant is consumed. GRANT raises the budget, CANCEL
          // (or teardown) wakes the gate with cancel set, and the driver
          // then finalizes the consumed prefix as a valid answer — the
          // paused worker never holds its FINAL hostage.
          std::unique_lock<std::mutex> gate(job->mu);
          job->cv.wait(gate, [job, &p] {
            // A worker that consumed its whole dataset must not pause — the
            // driver is about to emit its FINAL and there is nothing left for
            // a further grant to buy.
            return p.blocks_consumed >= p.blocks_total ||
                   job->granted > p.blocks_consumed || job->cancel.load();
          });
        }
      };
      // A table with ingested runs executes the leveled union plan against
      // the level set pinned HERE: appends and merges published after this
      // point are invisible to this query (snapshot isolation), and the
      // pinned snapshot keeps its runs alive through the scan.
      const auto pinned = server_->db_.PinLevels(stmt->table);
      CacheContext cache_ctx;
      // Paced executions bypass the answer cache: their artificial 0-error
      // bound must neither be served from a stored FINAL (the coordinator
      // needs fresh per-round pacing) nor inserted (it would poison the key
      // space with never-satisfiable bounds).
      if (!paced && server_->cache_ != nullptr) {
        cache_ctx.cache = server_->cache_.get();
        cache_ctx.table_generation = pinned.has_value()
                                         ? pinned->generation
                                         : tables->fact->generation.load();
        if (pinned.has_value()) {
          // The snapshot fingerprint scopes cached answers to this exact
          // level set; any later publication changes it.
          cache_ctx.key_suffix = pinned->fingerprint;
        }
      }
      const uint32_t batch_override =
          paced ? static_cast<uint32_t>(std::min<uint64_t>(
                      query.round_blocks, std::numeric_limits<uint32_t>::max()))
                : 0;
      if (pinned.has_value()) {
        return runtime.ExecuteLeveled(
            *stmt, tables->fact->name, tables->fact->table,
            tables->fact->scale_factor, pinned->levels,
            tables->dim != nullptr ? &tables->dim->table : nullptr,
            std::move(progress), cancel, cache_ctx, batch_override);
      }
      return runtime.Execute(
          *stmt, tables->fact->name, tables->fact->table, tables->fact->scale_factor,
          tables->dim != nullptr ? &tables->dim->table : nullptr, std::move(progress),
          cancel, cache_ctx, batch_override);
    }();

    if (answer.ok()) {
      answer.value().report.queue_latency = decision.queue_seconds;
      FinalFrame frame;
      frame.id = query.id;
      frame.result = std::move(answer.value().result);
      frame.report = std::move(answer.value().report);
      const std::string payload = EncodeFinal(frame);
      if (payload.size() <= kMaxFrameBytes) {
        Send(payload);
      } else {
        // "FINAL or ERROR — never neither" (docs/PROTOCOL.md §2): a result
        // too large for one frame still terminates the query explicitly.
        ErrorFrame error;
        error.has_id = true;
        error.id = query.id;
        error.code = wire_error::kQueryFailed;
        error.message = "result exceeds the frame size limit";
        Send(EncodeError(error));
      }
    } else {
      ErrorFrame error;
      error.has_id = true;
      error.id = query.id;
      error.code = wire_error::kQueryFailed;
      error.message = answer.status().ToString();
      Send(EncodeError(error));
    }
  }

  // Serialized frame write; false once the peer is unreachable. A failed
  // write may have left a frame half-written (e.g. a send timeout partway
  // through), after which the stream is unsynchronizable — latch the
  // failure so no later frame is ever appended to the torn one.
  bool Send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (closing_.load() || write_failed_) {
      return false;
    }
    if (!WriteFrame(fd_.get(), payload).ok()) {
      write_failed_ = true;
      return false;
    }
    return true;
  }

  // A submitted query reached its terminal frame (FINAL, ERROR, or shed).
  void FinishJob(uint64_t id) {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.erase(id);
    --outstanding_;
    jobs_cv_.notify_all();
  }

  void CancelAllQueries() {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true);
      job->cv.notify_all();  // wake paced queries paused on their grant gate
    }
  }

  bool HasOutstanding() {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    return outstanding_ != 0;
  }

  // Blocks until every submitted query has produced its terminal frame. The
  // admission workers outlive the sessions (BlinkServer member order), so
  // queued tickets always drain.
  void AwaitQueries() {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    jobs_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  BlinkServer* server_;
  OwnedFd fd_;
  const uint64_t id_;  // fairness identity in the admission queue
  std::thread reader_;
  std::mutex write_mu_;
  bool write_failed_ = false;  // guarded by write_mu_
  bool greeted_ = false;
  std::atomic<bool> closing_{false};
  std::atomic<bool> finished_{false};
  // In-flight queries (queued or running) by id, each with its own cancel
  // flag threaded into the plan driver and — for paced queries — the grant
  // gate its execution waits on between rounds.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::unordered_map<uint64_t, std::shared_ptr<Job>> jobs_;
  size_t outstanding_ = 0;  // guarded by jobs_mu_
};

BlinkServer::BlinkServer(const BlinkDB& db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

BlinkServer::BlinkServer(BlinkDB& db, ServerOptions options)
    : db_(db), mutable_db_(&db), options_(std::move(options)) {}

BlinkServer::~BlinkServer() { Stop(); }

Status BlinkServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.answer_cache_entries > 0) {
    cache_ = std::make_unique<AnswerCache>(options_.answer_cache_entries);
  }
  admission_ = std::make_unique<AdmissionController>(
      &db_.samples(), &db_.cluster(), options_.runtime,
      options_.max_concurrent_queries, options_.admission);
  auto listener = ListenTcp(options_.host, options_.port, &port_);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(listener.value());
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  BLINK_LOG(kInfo) << "blinkdb server listening on " << options_.host << ":" << port_;
  return Status::Ok();
}

void BlinkServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Unblock accept() and join the acceptor BEFORE closing the descriptor:
  // AcceptLoop reads listener_ until it exits, and close() would also free
  // the fd slot for reuse while accept() still references it.
  ::shutdown(listener_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  sessions.clear();  // ~Session shuts each down and drains its queries
  admission_.reset();  // after the sessions: they wait on its workers
}

void BlinkServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) {
        return;
      }
      if (errno != EINTR && errno != ECONNABORTED) {
        // Persistent failure (EMFILE/ENFILE under fd pressure): back off
        // instead of hot-looping at 100% CPU until fds free up.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.write_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.write_timeout_seconds;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    const uint64_t session_id = sessions_accepted_.fetch_add(1) + 1;
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Opportunistically reap sessions whose reader already exited, so a
    // long-lived server does not accumulate dead connections.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->finished()) {
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    sessions_.push_back(std::make_unique<Session>(this, OwnedFd(fd), session_id));
  }
}

}  // namespace blink
