// Multi-client streaming query server over TCP (docs/PROTOCOL.md).
//
// The server turns the in-process progress-callback contract of
// BlinkDB::Query(sql, progress) into wire frames: every streamed round's
// combined partial answer becomes a PARTIAL frame (union estimate,
// achieved_error, blocks_consumed), and the terminal answer becomes a FINAL
// frame carrying the full ExecutionReport — so an interactive client watches
// the answer converge in real time, the paper's bounded-error /
// bounded-response-time promise made visible.
//
// Architecture (docs/ARCHITECTURE.md "Serving layer"):
//
//   accept thread ──▶ Session per connection (reader thread)
//                        │  HELLO handshake, frame dispatch
//                        │  QUERY ──▶ AdmissionController::Submit (bounded
//                        │            FIFO; BUSY only when the queue is full)
//                        │             └▶ admission worker: answer cache
//                        │                lookup, then QueryRuntime::Execute
//                        │                  progress → PARTIAL frames
//                        │                  return   → FINAL (or ERROR) frame
//                        └─ CANCEL ─▶ flips that query's cancel flag; the
//                           plan driver stops at the next round boundary and
//                           the query still ends with FINAL (cancelled=true,
//                           partial answer, only consumed blocks charged §4.4)
//
// Sessions keep their reader thread free while queries run (that is what
// makes mid-query CANCEL possible), serialize socket writes behind a mutex
// (PARTIALs from the admission workers, ERRORs from the reader), and survive
// malformed frames — the length-prefixed transport stays in sync, so the
// server answers ERROR and keeps serving. Repeated bounded queries are
// served from the shared AnswerCache (hit: stored FINAL, zero blocks;
// near-miss: streaming resumes from the cached prefix), and overload widens
// error bounds down the shed ladder before any query is rejected.
#ifndef BLINKDB_SERVER_SERVER_H_
#define BLINKDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/blinkdb.h"
#include "src/cache/answer_cache.h"
#include "src/server/admission.h"
#include "src/server/net.h"
#include "src/server/protocol.h"

namespace blink {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read the actual one from port() after Start.
  uint16_t port = 0;
  std::string server_name = "blinkdb-server/1";
  // Runtime settings every pooled QueryRuntime is built with. For
  // bit-identical answers against an in-process BlinkDB::Query, use the same
  // exec_threads / morsel_rows / scheduling configuration on both sides.
  RuntimeConfig runtime;
  // QueryRuntime instances in the shared pool = queries executing
  // concurrently across all sessions; further queries wait their turn in the
  // admission queue.
  size_t max_concurrent_queries = 4;
  // Deadline-aware admission queue (src/server/admission.h): waiting depth,
  // queue deadline, and the load-shedding ladder of widened error bounds.
  // BUSY is answered only when the queue itself is full.
  AdmissionOptions admission;
  // Answer-cache entries shared by every runtime in the pool; 0 disables
  // caching (every query executes cold, the pre-cache behavior).
  size_t answer_cache_entries = 256;
  // SO_SNDTIMEO on session sockets: a client that stops reading (TCP buffer
  // full) fails the blocked frame write after this long instead of pinning
  // the query thread — and its runtime lease — forever. The failed write
  // flips the session's cancel flag, so the query unwinds at the next round
  // boundary and the lease frees. 0 disables the timeout.
  unsigned write_timeout_seconds = 30;
  // Idle read timeout (SO_RCVTIMEO on session sockets): a session whose
  // client sends nothing for this long while it has no queries in flight is
  // closed, reclaiming the reader thread a half-open client would otherwise
  // pin forever. While queries are in flight the timeout only re-arms — a
  // quiet client legitimately waits on its FINAL. 0 disables. Sub-second
  // values are honored (tests use fractions).
  double idle_read_timeout_seconds = 0.0;
  // Shard role announced in the HELLO reply: a worker holding shard
  // `shard_index` of `shard_count` (each a stratified row slice whose sample
  // families are valid block prefixes). shard_count 0 = whole table, the
  // non-distributed default. See docs/PROTOCOL.md "Shard role".
  uint64_t shard_index = 0;
  uint64_t shard_count = 0;
};

class BlinkServer {
 public:
  // `db` is the serving state (catalog + samples + cluster model); it must
  // outlive the server and must not be mutated while serving. APPEND frames
  // draw APPEND_FAILED on a server built over a const db.
  explicit BlinkServer(const BlinkDB& db, ServerOptions options = {});

  // Ingest-enabled server: same as above, but APPEND frames land rows in the
  // db's leveled stores (BlinkDB::Append + one maintenance tick). The only
  // mutation the server performs is through that thread-safe ingest API;
  // queries running mid-append keep their pinned level set.
  explicit BlinkServer(BlinkDB& db, ServerOptions options = {});
  ~BlinkServer();

  BlinkServer(const BlinkServer&) = delete;
  BlinkServer& operator=(const BlinkServer&) = delete;

  // Binds, listens, and starts the accept thread. Fails if already started
  // or the address is unavailable.
  Status Start();

  // Closes the listener and every session, cancels in-flight queries, joins
  // all threads. Idempotent.
  void Stop();

  // The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  // Sessions accepted over the server's lifetime (for tests/metrics).
  size_t sessions_accepted() const { return sessions_accepted_.load(); }

  // Answer-cache counters (null stats when caching is disabled).
  AnswerCacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : AnswerCacheStats{};
  }
  // Admission-queue counters (valid after Start).
  AdmissionStats admission_stats() const {
    return admission_ != nullptr ? admission_->stats() : AdmissionStats{};
  }

 private:
  class Session;

  void AcceptLoop();

  const BlinkDB& db_;
  // Non-null only for the ingest-enabled constructor; the target of APPEND
  // frames. Always aliases db_.
  BlinkDB* mutable_db_ = nullptr;
  ServerOptions options_;
  // Destruction order matters: sessions_ (declared last) is destroyed first,
  // and session teardown waits on queries the admission workers are still
  // driving — so admission_ must outlive sessions_.
  std::unique_ptr<AnswerCache> cache_;
  std::unique_ptr<AdmissionController> admission_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> sessions_accepted_{0};
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace blink

#endif  // BLINKDB_SERVER_SERVER_H_
