// Deterministic cluster latency model.
//
// This module substitutes the paper's 100-node EC2 cluster (§6.1): it charges
// simulated time for scanning bytes from disk or memory across parallel
// nodes, per-wave task scheduling overhead, job startup, and shuffle. Engine
// presets model the paper's baselines: Hive-on-Hadoop, Shark without/with
// caching, and BlinkDB itself (Shark + samples). Constants are calibrated so
// the absolute numbers reported in §6.2 (e.g. ~110 s for Shark-cached on
// 2.5 TB; thousands of seconds for Hive; seconds for BlinkDB) are reproduced
// by the defaults.
#ifndef BLINKDB_CLUSTER_CLUSTER_MODEL_H_
#define BLINKDB_CLUSTER_CLUSTER_MODEL_H_

#include <string>
#include <vector>

#include "src/util/rng.h"

namespace blink {

struct ClusterConfig {
  int num_nodes = 100;
  int slots_per_node = 8;                     // task slots (8 cores/node, §6.1)
  double disk_bandwidth_per_node = 60e6;      // B/s effective scan w/ processing
  double memory_bandwidth_per_node = 250e6;   // B/s in-memory processing rate
  double memory_capacity_per_node = 60e9;     // cache per node (6 TB / 100)
  double network_bandwidth_per_node = 120e6;  // B/s shuffle
  // Raw sequential I/O across the node's disk array, used by bulk sample
  // creation (no query processing on the critical path; §5 reports uniform
  // sample creation in "a few hundred seconds" for TB-scale tables).
  double raw_io_bandwidth_per_node = 240e6;

  double total_memory_capacity() const {
    return memory_capacity_per_node * num_nodes;
  }
};

// The query-processing frameworks compared in Fig 6(c).
enum class EngineKind { kHiveOnHadoop, kSharkNoCache, kSharkCached, kBlinkDb };

const char* EngineKindName(EngineKind kind);

struct EngineModel {
  double job_startup_s = 1.0;       // submission / driver latency
  double per_wave_overhead_s = 0.3; // scheduling + JVM costs per task wave
  double task_split_bytes = 128e6;  // input split size
  double cpu_inefficiency = 1.2;    // multiplier on raw scan bandwidth time
  bool can_cache = false;           // may serve input from cluster RAM

  // Paper-calibrated presets.
  static EngineModel For(EngineKind kind);
};

// What a query costs, at paper scale.
struct QueryWorkload {
  double input_bytes = 0.0;    // bytes scanned
  double shuffle_bytes = 0.0;  // bytes exchanged for aggregation
  bool want_cached = true;     // input is requested from cache if the engine can
  // Scan blocks (morsels) making up the input. When nonzero, task scheduling
  // is block-granular: tasks are assigned whole blocks, never block
  // fractions, mirroring how the engine charges §4.4 delta blocks. 0 falls
  // back to pure byte-based splitting.
  uint64_t input_blocks = 0;
};

class ClusterModel {
 public:
  ClusterModel() : ClusterModel(ClusterConfig{}, EngineModel::For(EngineKind::kBlinkDb)) {}
  ClusterModel(ClusterConfig config, EngineModel engine)
      : config_(config), engine_(engine) {}

  const ClusterConfig& config() const { return config_; }
  const EngineModel& engine() const { return engine_; }

  // Deterministic latency estimate in seconds.
  double EstimateLatency(const QueryWorkload& workload) const;

  // Latency of `concurrent` workloads running side by side — the makespan
  // (slowest member), never the sum. This is how a union plan's pipelines
  // are charged: each pipeline's consumed blocks are an independent parallel
  // scan, so the plan finishes when the slowest pipeline does. Empty input
  // costs nothing.
  double MakespanLatency(const std::vector<QueryWorkload>& concurrent) const;

  // Latency with multiplicative straggler noise (log-normal-ish, mean ~1):
  // used to produce the min/avg/max bars of Fig 8(a).
  double SampleLatency(const QueryWorkload& workload, Rng& rng) const;

  // Effective per-node scan bandwidth for an input of `bytes`, honoring the
  // cache capacity (inputs larger than cluster RAM partially spill, §6.2).
  double EffectiveScanBandwidth(double bytes, bool want_cached) const;

  // Time to create a sample of `sample_bytes` from a table of `table_bytes`
  // (§5): uniform sampling is a parallel scan; stratified sampling adds a
  // full shuffle keyed by the stratification columns.
  double SampleCreationTime(double table_bytes, double sample_bytes, bool stratified) const;

 private:
  ClusterConfig config_;
  EngineModel engine_;
};

}  // namespace blink

#endif  // BLINKDB_CLUSTER_CLUSTER_MODEL_H_
