#include "src/cluster/cluster_model.h"

#include <algorithm>
#include <cmath>

namespace blink {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHiveOnHadoop:
      return "Hive on Hadoop";
    case EngineKind::kSharkNoCache:
      return "Hive on Spark (without caching)";
    case EngineKind::kSharkCached:
      return "Hive on Spark (with caching)";
    case EngineKind::kBlinkDb:
      return "BlinkDB";
  }
  return "?";
}

EngineModel EngineModel::For(EngineKind kind) {
  EngineModel model;
  switch (kind) {
    case EngineKind::kHiveOnHadoop:
      // MapReduce: heavy per-job and per-wave costs, disk-only, CPU overhead
      // from (de)serialization and materialization between stages.
      model.job_startup_s = 15.0;
      model.per_wave_overhead_s = 12.0;
      model.task_split_bytes = 256e6;
      model.cpu_inefficiency = 2.5;
      model.can_cache = false;
      break;
    case EngineKind::kSharkNoCache:
      model.job_startup_s = 1.5;
      model.per_wave_overhead_s = 0.3;
      model.task_split_bytes = 128e6;
      model.cpu_inefficiency = 1.2;
      model.can_cache = false;
      break;
    case EngineKind::kSharkCached:
      model.job_startup_s = 1.5;
      model.per_wave_overhead_s = 0.3;
      model.task_split_bytes = 128e6;
      model.cpu_inefficiency = 1.2;
      model.can_cache = true;
      break;
    case EngineKind::kBlinkDb:
      // BlinkDB runs on Shark; samples are small and usually cached.
      model.job_startup_s = 0.6;
      model.per_wave_overhead_s = 0.2;
      model.task_split_bytes = 128e6;
      model.cpu_inefficiency = 1.2;
      model.can_cache = true;
      break;
  }
  return model;
}

double ClusterModel::EffectiveScanBandwidth(double bytes, bool want_cached) const {
  const bool cached = want_cached && engine_.can_cache;
  if (!cached) {
    return config_.disk_bandwidth_per_node;
  }
  const double capacity = config_.total_memory_capacity();
  if (bytes <= capacity) {
    return config_.memory_bandwidth_per_node;
  }
  // Partial spill: the cached fraction reads at memory speed, the rest at
  // disk speed. Effective bandwidth is the harmonic blend.
  const double frac = capacity / bytes;
  const double t_mem = frac / config_.memory_bandwidth_per_node;
  const double t_disk = (1.0 - frac) / config_.disk_bandwidth_per_node;
  return 1.0 / (t_mem + t_disk);
}

double ClusterModel::EstimateLatency(const QueryWorkload& workload) const {
  const double nodes = static_cast<double>(config_.num_nodes);
  const double bw = EffectiveScanBandwidth(workload.input_bytes, workload.want_cached);
  const double scan_s =
      workload.input_bytes / (nodes * bw) * engine_.cpu_inefficiency;

  // Task count: block-granular when the workload carries its morsel
  // decomposition (tasks own whole blocks), byte-based otherwise.
  double tasks;
  if (workload.input_blocks > 0 && workload.input_bytes > 0.0) {
    const double avg_block_bytes =
        workload.input_bytes / static_cast<double>(workload.input_blocks);
    const double blocks_per_task =
        std::max(1.0, std::floor(engine_.task_split_bytes / avg_block_bytes));
    tasks = std::ceil(static_cast<double>(workload.input_blocks) / blocks_per_task);
  } else {
    tasks = std::ceil(workload.input_bytes / engine_.task_split_bytes);
  }
  const double slots = nodes * config_.slots_per_node;
  const double waves = std::max(1.0, std::ceil(tasks / slots));
  const double overhead_s = engine_.job_startup_s + waves * engine_.per_wave_overhead_s;

  // All-to-all shuffle with a mild coordination penalty that grows with
  // cluster size (the paper's "bulk" workloads pay higher communication
  // costs on larger clusters, Fig 8c).
  const double shuffle_s =
      workload.shuffle_bytes / (nodes * config_.network_bandwidth_per_node) *
      (1.0 + 0.15 * std::log2(std::max(2.0, nodes)));

  return scan_s + overhead_s + shuffle_s;
}

double ClusterModel::MakespanLatency(const std::vector<QueryWorkload>& concurrent) const {
  double makespan = 0.0;
  for (const QueryWorkload& workload : concurrent) {
    makespan = std::max(makespan, EstimateLatency(workload));
  }
  return makespan;
}

double ClusterModel::SampleLatency(const QueryWorkload& workload, Rng& rng) const {
  const double base = EstimateLatency(workload);
  // Stragglers skew latency upward: multiplicative noise exp(N(0, 0.08))
  // plus an occasional slow wave.
  double noise = std::exp(rng.NextGaussian() * 0.08);
  if (rng.NextBernoulli(0.05)) {
    noise *= 1.0 + rng.NextDouble() * 0.3;  // straggler wave
  }
  return base * noise;
}

double ClusterModel::SampleCreationTime(double table_bytes, double sample_bytes,
                                        bool stratified) const {
  const double nodes = static_cast<double>(config_.num_nodes);
  // Creation is pure sequential I/O (binomial row selection), so it runs at
  // the raw aggregate disk bandwidth rather than the query-processing rate.
  const double io_bw = config_.raw_io_bandwidth_per_node;
  const double scan_s = table_bytes / (nodes * io_bw);
  // Writing the sample back (HDFS replication factor ~2 effective cost).
  const double write_s = 2.0 * sample_bytes / (nodes * io_bw);
  double total = engine_.job_startup_s + scan_s + write_s;
  if (stratified) {
    // Stratification shuffles the kept rows to reducers keyed by phi
    // (§5: "5-30 minutes depending on the number of unique values").
    const double shuffle_s =
        sample_bytes / (nodes * config_.network_bandwidth_per_node) * 2.0;
    total += shuffle_s + 60.0;  // reducer sort/merge floor
  }
  return total;
}

}  // namespace blink
