// End-to-end sample planning: given a fact table, a weighted template
// workload, and a storage budget, compute candidate statistics, solve the
// selection problem (§3.2), and build the chosen sample families (§3.1).
// This is the "Offline Sample Creation" module of Fig 1/Fig 5.
#ifndef BLINKDB_OPTIMIZER_SAMPLE_PLANNER_H_
#define BLINKDB_OPTIMIZER_SAMPLE_PLANNER_H_

#include <string>
#include <vector>

#include "src/optimizer/sample_selection.h"
#include "src/sample/sample_family.h"
#include "src/sample/sample_store.h"
#include "src/util/rng.h"

namespace blink {

// A workload query template: columns of WHERE/GROUP BY clauses + weight.
struct WorkloadTemplate {
  std::vector<std::string> columns;
  double weight = 1.0;
};

struct PlannerConfig {
  // Total storage budget as a fraction of the fact table's size (the paper's
  // 50% / 100% / 200% settings).
  double budget_fraction = 0.5;
  // Stratification cap K (paper evaluation: 100,000; scaled down for small
  // tables by callers).
  uint64_t cap_k = 100'000;
  // Maximum columns per stratified set (§3.2.2 / §6.3: 3).
  size_t max_columns_per_set = 3;
  // Multi-resolution settings forwarded to family construction.
  double resolution_factor = 2.0;
  size_t max_resolutions = 6;
  // Also build a uniform family sized to this fraction of the table, charged
  // against the same budget (0 disables).
  double uniform_fraction = 0.0;
  // Churn limit for re-planning over an existing store (§3.2.3).
  double churn_r = 1.0;
  bool use_milp = true;
  uint64_t rng_seed = 42;
};

// One planned/built family.
struct PlannedFamily {
  std::vector<std::string> columns;  // empty = uniform
  double storage_bytes = 0.0;
  uint64_t storage_rows = 0;
};

struct SamplePlan {
  std::vector<PlannedFamily> families;
  double total_bytes = 0.0;
  double budget_bytes = 0.0;
  double objective = 0.0;
  bool used_milp = false;
  uint64_t milp_nodes = 0;
};

// Plans and builds sample families for `table`, registering them in `store`
// under `table_name`. Pre-existing stratified families participate in the
// churn constraint when churn_r < 1; families no longer selected are removed.
Result<SamplePlan> PlanAndBuildSamples(const Table& table, const std::string& table_name,
                                       const std::vector<WorkloadTemplate>& workload,
                                       const PlannerConfig& config, SampleStore& store);

// Planning only (no construction): returns the plan with per-family costs,
// used by benchmarks that sweep budgets (Fig 6a/6b).
Result<SamplePlan> PlanSamples(const Table& table,
                               const std::vector<WorkloadTemplate>& workload,
                               const PlannerConfig& config);

}  // namespace blink

#endif  // BLINKDB_OPTIMIZER_SAMPLE_PLANNER_H_
