// Per-column-set statistics feeding the sample-selection optimizer (§3.2.1):
// the number of distinct values |D(phi)|, the non-uniformity metric
// Delta(phi) (tail count below the cap K), and the storage cost Store(phi)
// of a stratified sample family on phi.
#ifndef BLINKDB_OPTIMIZER_COLUMN_STATS_H_
#define BLINKDB_OPTIMIZER_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/table.h"
#include "src/util/status.h"

namespace blink {

struct ColumnSetStats {
  std::vector<std::string> columns;  // sorted, lower-cased
  uint64_t distinct_values = 0;      // |D(phi)|
  uint64_t tail_count = 0;           // Delta(phi): values with frequency < K
  double sample_rows = 0.0;          // sum over values of min(F, K)
  double sample_bytes = 0.0;         // Store(phi): sample_rows * bytes/row
};

// Scans `table` once and computes the stats for `columns` under cap `cap_k`.
Result<ColumnSetStats> ComputeColumnSetStats(const Table& table,
                                             const std::vector<std::string>& columns,
                                             uint64_t cap_k);

// Generates the candidate column sets of §3.2.2: all non-empty subsets of
// each template's column set with at most `max_columns` columns,
// deduplicated across templates. Input column lists are lower-cased/sorted
// internally.
std::vector<std::vector<std::string>> GenerateCandidateColumnSets(
    const std::vector<std::vector<std::string>>& template_columns, size_t max_columns);

}  // namespace blink

#endif  // BLINKDB_OPTIMIZER_COLUMN_STATS_H_
