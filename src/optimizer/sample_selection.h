// Sample-selection optimization (paper §3.2.1-§3.2.3).
//
// Given query templates with weights and skew metrics, candidate column sets
// with storage costs, and a storage budget S, choose which stratified sample
// families to build by maximizing
//     G = sum_i w_i * y_i * Delta(phiT_i)                       (2)
// subject to
//     sum_j Store(phi_j) * z_j <= S                             (3)
//     y_i <= max_{phi_j subset of phiT_i} |D(phi_j)|/|D(phiT_i)| * z_j   (4)
// and, when re-solving with existing families and churn limit r:
//     sum_j (delta_j - z_j)^2 Store_j <= r * sum_j delta_j Store_j      (5)
//
// The max in (4) is linearized with continuous assignment variables t_ij
// (t_ij <= z_j, sum_j t_ij <= 1, y_i <= sum_j cov_ij t_ij); since z is binary
// and y is maximized, the LP optimum of t concentrates on the best built
// subset, recovering the max exactly. (delta - z)^2 in (5) is linear for
// binary z: delta + z - 2*delta*z.
#ifndef BLINKDB_OPTIMIZER_SAMPLE_SELECTION_H_
#define BLINKDB_OPTIMIZER_SAMPLE_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/optimizer/column_stats.h"

namespace blink {

// One query template: its column set phiT_i (sorted, lower-cased), its
// normalized weight w_i, and the stats of its full column set.
struct TemplateInfo {
  std::vector<std::string> columns;
  double weight = 0.0;
  uint64_t distinct_values = 0;  // |D(phiT_i)|
  uint64_t tail_count = 0;       // Delta(phiT_i)
};

struct SelectionConfig {
  double storage_budget_bytes = 0.0;
  // Churn limit r in [0,1] for re-solves (constraint (5)); 1 = unrestricted.
  double churn_r = 1.0;
  // Solve exactly with branch-and-bound MILP; fall back to greedy when false
  // or when the instance exceeds milp_max_nodes.
  bool use_milp = true;
  uint64_t milp_max_nodes = 100'000;
};

struct SelectionResult {
  std::vector<size_t> chosen;  // indices into the candidate vector
  double objective = 0.0;      // achieved G
  double storage_bytes = 0.0;  // cumulative Store of chosen sets
  bool used_milp = false;
  uint64_t milp_nodes = 0;
};

// Selects candidate column sets. `existing`, when provided, marks candidates
// already built (delta_j = 1) for the churn constraint.
SelectionResult SelectSampleColumnSets(const std::vector<TemplateInfo>& templates,
                                       const std::vector<ColumnSetStats>& candidates,
                                       const SelectionConfig& config,
                                       const std::vector<bool>* existing = nullptr);

// The coverage coefficient cov_ij = |D(phi_j)| / |D(phiT_i)| when phi_j is a
// subset of phiT_i, else 0. Exposed for tests.
double CoverageCoefficient(const TemplateInfo& tmpl, const ColumnSetStats& candidate);

}  // namespace blink

#endif  // BLINKDB_OPTIMIZER_SAMPLE_SELECTION_H_
