#include "src/optimizer/sample_planner.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace blink {
namespace {

struct PlanningInputs {
  std::vector<TemplateInfo> templates;
  std::vector<ColumnSetStats> candidates;
  SelectionResult selection;
  double table_bytes = 0.0;
  double budget_bytes = 0.0;
  double stratified_budget = 0.0;
  double uniform_bytes = 0.0;
};

Result<PlanningInputs> RunSelection(const Table& table,
                                    const std::vector<WorkloadTemplate>& workload,
                                    const PlannerConfig& config,
                                    const SampleStore* store,
                                    const std::string& table_name) {
  PlanningInputs inputs;
  inputs.table_bytes =
      static_cast<double>(table.num_rows()) * table.EstimatedBytesPerRow();
  inputs.budget_bytes = config.budget_fraction * inputs.table_bytes;
  inputs.uniform_bytes = config.uniform_fraction * inputs.table_bytes;
  inputs.stratified_budget = std::max(0.0, inputs.budget_bytes - inputs.uniform_bytes);

  // Template stats.
  std::vector<std::vector<std::string>> template_columns;
  for (const auto& tmpl : workload) {
    if (tmpl.columns.empty()) {
      continue;  // templates with no filter/group columns need no stratification
    }
    template_columns.push_back(tmpl.columns);
    auto stats = ComputeColumnSetStats(table, tmpl.columns, config.cap_k);
    if (!stats.ok()) {
      return stats.status();
    }
    TemplateInfo info;
    info.columns = stats->columns;
    info.weight = tmpl.weight;
    info.distinct_values = stats->distinct_values;
    info.tail_count = stats->tail_count;
    inputs.templates.push_back(std::move(info));
  }

  // Candidate stats.
  const auto candidate_sets =
      GenerateCandidateColumnSets(template_columns, config.max_columns_per_set);
  inputs.candidates.reserve(candidate_sets.size());
  for (const auto& cols : candidate_sets) {
    auto stats = ComputeColumnSetStats(table, cols, config.cap_k);
    if (!stats.ok()) {
      return stats.status();
    }
    inputs.candidates.push_back(std::move(stats.value()));
  }

  // Existing-family flags for churn. Families built by earlier plans whose
  // column sets do not appear among the new templates' candidates must STILL
  // participate (constraint (5) charges churn for dropping them), so append
  // them as zero-coverage candidates.
  std::vector<bool> existing(inputs.candidates.size(), false);
  bool any_existing = false;
  if (store != nullptr) {
    for (const SampleFamily* family : store->FamiliesFor(table_name)) {
      if (family->kind() != SampleFamily::Kind::kStratified) {
        continue;
      }
      bool found = false;
      for (size_t j = 0; j < inputs.candidates.size(); ++j) {
        if (inputs.candidates[j].columns == family->columns()) {
          existing[j] = true;
          found = true;
          break;
        }
      }
      if (!found) {
        ColumnSetStats stats;
        stats.columns = family->columns();
        stats.distinct_values = family->num_strata();
        stats.sample_rows = static_cast<double>(family->storage_rows());
        stats.sample_bytes = family->storage_bytes();
        inputs.candidates.push_back(std::move(stats));
        existing.push_back(true);
      }
      any_existing = true;
    }
  }

  SelectionConfig sel;
  sel.storage_budget_bytes = inputs.stratified_budget;
  sel.churn_r = config.churn_r;
  sel.use_milp = config.use_milp;
  inputs.selection = SelectSampleColumnSets(inputs.templates, inputs.candidates, sel,
                                            any_existing ? &existing : nullptr);
  return inputs;
}

SamplePlan MakePlan(const PlanningInputs& inputs, const PlannerConfig& config) {
  SamplePlan plan;
  plan.budget_bytes = inputs.budget_bytes;
  plan.objective = inputs.selection.objective;
  plan.used_milp = inputs.selection.used_milp;
  plan.milp_nodes = inputs.selection.milp_nodes;
  if (config.uniform_fraction > 0.0) {
    PlannedFamily uniform;
    uniform.storage_bytes = inputs.uniform_bytes;
    plan.families.push_back(std::move(uniform));
    plan.total_bytes += inputs.uniform_bytes;
  }
  for (size_t j : inputs.selection.chosen) {
    PlannedFamily family;
    family.columns = inputs.candidates[j].columns;
    family.storage_bytes = inputs.candidates[j].sample_bytes;
    family.storage_rows = static_cast<uint64_t>(inputs.candidates[j].sample_rows);
    plan.total_bytes += family.storage_bytes;
    plan.families.push_back(std::move(family));
  }
  return plan;
}

}  // namespace

Result<SamplePlan> PlanSamples(const Table& table,
                               const std::vector<WorkloadTemplate>& workload,
                               const PlannerConfig& config) {
  auto inputs = RunSelection(table, workload, config, nullptr, "");
  if (!inputs.ok()) {
    return inputs.status();
  }
  return MakePlan(*inputs, config);
}

Result<SamplePlan> PlanAndBuildSamples(const Table& table, const std::string& table_name,
                                       const std::vector<WorkloadTemplate>& workload,
                                       const PlannerConfig& config, SampleStore& store) {
  auto inputs = RunSelection(table, workload, config, &store, table_name);
  if (!inputs.ok()) {
    return inputs.status();
  }
  SamplePlan plan = MakePlan(*inputs, config);

  Rng rng(config.rng_seed);
  SampleFamilyOptions family_options;
  family_options.largest_cap = config.cap_k;
  family_options.resolution_factor = config.resolution_factor;
  family_options.max_resolutions = config.max_resolutions;
  family_options.uniform_fraction = config.uniform_fraction;

  // Drop stratified families that are no longer selected.
  std::vector<std::vector<std::string>> keep;
  for (size_t j : inputs->selection.chosen) {
    keep.push_back(inputs->candidates[j].columns);
  }
  for (const SampleFamily* family : store.FamiliesFor(table_name)) {
    if (family->kind() != SampleFamily::Kind::kStratified) {
      continue;
    }
    if (std::find(keep.begin(), keep.end(), family->columns()) == keep.end()) {
      store.RemoveFamily(table_name, family->columns());
    }
  }

  // Build the uniform family if requested and absent.
  if (config.uniform_fraction > 0.0 && store.UniformFamily(table_name) == nullptr) {
    auto uniform = SampleFamily::BuildUniform(table, family_options, rng);
    if (!uniform.ok()) {
      return uniform.status();
    }
    store.AddFamily(table_name, std::move(uniform.value()));
  }

  // Build newly selected stratified families.
  for (size_t j : inputs->selection.chosen) {
    const auto& cols = inputs->candidates[j].columns;
    if (store.FindStratified(table_name, cols) != nullptr) {
      continue;  // kept across re-solve
    }
    auto family = SampleFamily::BuildStratified(table, cols, family_options, rng);
    if (!family.ok()) {
      return family.status();
    }
    store.AddFamily(table_name, std::move(family.value()));
    BLINK_LOG(kInfo) << "built stratified family on {" << Join(cols, ",") << "}";
  }
  return plan;
}

}  // namespace blink
