#include "src/optimizer/sample_selection.h"

#include <algorithm>
#include <cmath>

#include "src/lp/milp.h"

namespace blink {
namespace {

bool IsSubsetSorted(const std::vector<std::string>& sub,
                    const std::vector<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

// Greedy fallback: repeatedly add the candidate with the best marginal
// objective gain per storage byte, honoring budget and churn.
SelectionResult SolveGreedy(const std::vector<TemplateInfo>& templates,
                            const std::vector<ColumnSetStats>& candidates,
                            const SelectionConfig& config,
                            const std::vector<bool>* existing) {
  const size_t m = templates.size();
  const size_t a = candidates.size();
  SelectionResult result;

  std::vector<bool> chosen(a, false);
  std::vector<double> coverage(m, 0.0);  // current y_i
  double storage = 0.0;

  // Churn budget: with existing families, keep them all (zero churn) and
  // spend at most r * existing_storage on additions. Dropping existing
  // families never helps the greedy objective, so the churn constraint
  // reduces to a cap on new storage.
  double churn_budget = std::numeric_limits<double>::infinity();
  if (existing != nullptr && config.churn_r < 1.0) {
    double existing_storage = 0.0;
    for (size_t j = 0; j < a; ++j) {
      if ((*existing)[j]) {
        existing_storage += candidates[j].sample_bytes;
      }
    }
    churn_budget = config.churn_r * existing_storage;
    for (size_t j = 0; j < a; ++j) {
      if ((*existing)[j] && storage + candidates[j].sample_bytes <=
                                config.storage_budget_bytes) {
        chosen[j] = true;
        storage += candidates[j].sample_bytes;
        for (size_t i = 0; i < m; ++i) {
          coverage[i] =
              std::max(coverage[i], CoverageCoefficient(templates[i], candidates[j]));
        }
      }
    }
  }

  double spent_churn = 0.0;
  for (;;) {
    double best_ratio = 0.0;
    size_t best_j = a;
    double best_gain = 0.0;
    for (size_t j = 0; j < a; ++j) {
      if (chosen[j]) {
        continue;
      }
      const double cost = candidates[j].sample_bytes;
      if (storage + cost > config.storage_budget_bytes) {
        continue;
      }
      const bool is_new = existing == nullptr || !(*existing)[j];
      if (is_new && spent_churn + cost > churn_budget) {
        continue;
      }
      double gain = 0.0;
      for (size_t i = 0; i < m; ++i) {
        const double cov = CoverageCoefficient(templates[i], candidates[j]);
        if (cov > coverage[i]) {
          gain += templates[i].weight * static_cast<double>(templates[i].tail_count) *
                  (cov - coverage[i]);
        }
      }
      const double ratio = cost > 0.0 ? gain / cost : gain;
      if (gain > 0.0 && ratio > best_ratio) {
        best_ratio = ratio;
        best_j = j;
        best_gain = gain;
      }
    }
    if (best_j == a) {
      break;
    }
    chosen[best_j] = true;
    storage += candidates[best_j].sample_bytes;
    if (existing == nullptr || !(*existing)[best_j]) {
      spent_churn += candidates[best_j].sample_bytes;
    }
    result.objective += best_gain;
    for (size_t i = 0; i < m; ++i) {
      coverage[i] =
          std::max(coverage[i], CoverageCoefficient(templates[i], candidates[best_j]));
    }
  }

  for (size_t j = 0; j < a; ++j) {
    if (chosen[j]) {
      result.chosen.push_back(j);
    }
  }
  result.storage_bytes = storage;
  result.used_milp = false;
  // Recompute the exact objective from final coverage.
  result.objective = 0.0;
  for (size_t i = 0; i < m; ++i) {
    result.objective +=
        templates[i].weight * static_cast<double>(templates[i].tail_count) * coverage[i];
  }
  return result;
}

}  // namespace

double CoverageCoefficient(const TemplateInfo& tmpl, const ColumnSetStats& candidate) {
  if (tmpl.distinct_values == 0) {
    return 0.0;
  }
  if (!IsSubsetSorted(candidate.columns, tmpl.columns)) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(candidate.distinct_values) /
                           static_cast<double>(tmpl.distinct_values));
}

SelectionResult SelectSampleColumnSets(const std::vector<TemplateInfo>& templates,
                                       const std::vector<ColumnSetStats>& candidates,
                                       const SelectionConfig& config,
                                       const std::vector<bool>* existing) {
  if (!config.use_milp) {
    return SolveGreedy(templates, candidates, config, existing);
  }

  const size_t m = templates.size();
  const size_t a = candidates.size();

  MilpProblem milp;
  // Variables: z_j (binary), y_i in [0,1], t_ij in [0,1] for covering pairs.
  // z_j carries a vanishing storage penalty so that ties break toward NOT
  // building families that contribute nothing to the objective.
  double max_store = 1.0;
  for (const auto& c : candidates) {
    max_store = std::max(max_store, c.sample_bytes);
  }
  std::vector<size_t> z_vars(a);
  for (size_t j = 0; j < a; ++j) {
    z_vars[j] = milp.lp.AddVariable(-1e-6 * candidates[j].sample_bytes / max_store, 1.0);
    milp.binary_vars.push_back(z_vars[j]);
  }
  std::vector<size_t> y_vars(m);
  for (size_t i = 0; i < m; ++i) {
    y_vars[i] = milp.lp.AddVariable(
        templates[i].weight * static_cast<double>(templates[i].tail_count), 1.0);
  }

  // (3) storage budget.
  {
    LinearConstraint budget;
    for (size_t j = 0; j < a; ++j) {
      budget.terms.emplace_back(z_vars[j], candidates[j].sample_bytes);
    }
    budget.relation = Relation::kLe;
    budget.rhs = config.storage_budget_bytes;
    milp.lp.AddConstraint(std::move(budget));
  }

  // (4) coverage, linearized.
  for (size_t i = 0; i < m; ++i) {
    LinearConstraint y_le_sum;       // y_i - sum_j cov_ij t_ij <= 0
    LinearConstraint t_sum;          // sum_j t_ij <= 1
    y_le_sum.terms.emplace_back(y_vars[i], 1.0);
    bool any = false;
    for (size_t j = 0; j < a; ++j) {
      const double cov = CoverageCoefficient(templates[i], candidates[j]);
      if (cov <= 0.0) {
        continue;
      }
      any = true;
      const size_t t_var = milp.lp.AddVariable(0.0, 1.0);
      y_le_sum.terms.emplace_back(t_var, -cov);
      t_sum.terms.emplace_back(t_var, 1.0);
      // t_ij <= z_j.
      milp.lp.AddConstraint({{{t_var, 1.0}, {z_vars[j], -1.0}}, Relation::kLe, 0.0});
    }
    if (!any) {
      // No candidate covers this template: force y_i = 0.
      milp.lp.AddConstraint({{{y_vars[i], 1.0}}, Relation::kLe, 0.0});
      continue;
    }
    y_le_sum.relation = Relation::kLe;
    y_le_sum.rhs = 0.0;
    milp.lp.AddConstraint(std::move(y_le_sum));
    t_sum.relation = Relation::kLe;
    t_sum.rhs = 1.0;
    milp.lp.AddConstraint(std::move(t_sum));
  }

  // (5) churn on re-solve: sum_j (delta_j + z_j - 2 delta_j z_j) Store_j
  //                          <= r * sum_j delta_j Store_j.
  if (existing != nullptr && config.churn_r < 1.0) {
    // sum_exist (1 - z_j) Store_j + sum_new z_j Store_j <= r * sum_exist Store_j
    //   ==>  -sum_exist z_j Store_j + sum_new z_j Store_j
    //          <= (r - 1) * sum_exist Store_j.
    LinearConstraint churn;
    double existing_storage = 0.0;
    for (size_t j = 0; j < a; ++j) {
      const double store = candidates[j].sample_bytes;
      if ((*existing)[j]) {
        existing_storage += store;
        churn.terms.emplace_back(z_vars[j], -store);
      } else {
        churn.terms.emplace_back(z_vars[j], store);
      }
    }
    churn.relation = Relation::kLe;
    churn.rhs = (config.churn_r - 1.0) * existing_storage;
    milp.lp.AddConstraint(std::move(churn));
  }

  MilpOptions options;
  options.max_nodes = config.milp_max_nodes;
  const MilpSolution solution = SolveMilp(milp, options);
  if (solution.status != MilpStatus::kOptimal) {
    // Infeasible churn constraints or node-limit: fall back to greedy.
    return SolveGreedy(templates, candidates, config, existing);
  }

  SelectionResult result;
  result.used_milp = true;
  result.milp_nodes = solution.nodes_explored;
  for (size_t j = 0; j < a; ++j) {
    if (solution.values[z_vars[j]] > 0.5) {
      result.chosen.push_back(j);
      result.storage_bytes += candidates[j].sample_bytes;
    }
  }
  // Recompute the paper's objective G from the chosen sets (the solver's
  // value includes the vanishing tie-break penalty).
  for (const auto& tmpl : templates) {
    double coverage = 0.0;
    for (size_t j : result.chosen) {
      coverage = std::max(coverage, CoverageCoefficient(tmpl, candidates[j]));
    }
    result.objective += tmpl.weight * static_cast<double>(tmpl.tail_count) * coverage;
  }
  return result;
}

}  // namespace blink
