#include "src/optimizer/column_stats.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/util/string_util.h"

namespace blink {

Result<ColumnSetStats> ComputeColumnSetStats(const Table& table,
                                             const std::vector<std::string>& columns,
                                             uint64_t cap_k) {
  if (columns.empty()) {
    return Status::InvalidArgument("column set must be non-empty");
  }
  std::vector<size_t> indices;
  ColumnSetStats stats;
  for (const auto& name : columns) {
    auto idx = table.schema().FindColumn(name);
    if (!idx.has_value()) {
      return Status::NotFound("column '" + name + "' not found");
    }
    indices.push_back(*idx);
    stats.columns.push_back(AsciiToLower(name));
  }
  std::sort(stats.columns.begin(), stats.columns.end());

  KeyEncoder encoder(table, indices);
  std::unordered_map<std::vector<int64_t>, uint64_t, KeyHash> freq;
  std::vector<int64_t> key;
  for (uint64_t row = 0; row < table.num_rows(); ++row) {
    encoder.Encode(row, key);
    ++freq[key];
  }
  stats.distinct_values = freq.size();
  for (const auto& [k, f] : freq) {
    (void)k;
    if (f < cap_k) {
      ++stats.tail_count;
    }
    stats.sample_rows += static_cast<double>(std::min(f, cap_k));
  }
  stats.sample_bytes = stats.sample_rows * table.EstimatedBytesPerRow();
  return stats;
}

std::vector<std::vector<std::string>> GenerateCandidateColumnSets(
    const std::vector<std::vector<std::string>>& template_columns, size_t max_columns) {
  std::set<std::vector<std::string>> unique;
  for (const auto& raw : template_columns) {
    std::vector<std::string> cols;
    cols.reserve(raw.size());
    for (const auto& c : raw) {
      cols.push_back(AsciiToLower(c));
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    const size_t n = cols.size();
    if (n == 0) {
      continue;
    }
    // Enumerate combinations of size 1..max_columns directly (avoids the
    // 2^n blow-up the paper's §3.2.2 pruning exists to prevent).
    const size_t max_size = std::min(max_columns, n);
    std::vector<size_t> pick;
    auto recurse = [&](auto&& self, size_t start) -> void {
      if (!pick.empty()) {
        std::vector<std::string> subset;
        subset.reserve(pick.size());
        for (size_t i : pick) {
          subset.push_back(cols[i]);
        }
        unique.insert(std::move(subset));
      }
      if (pick.size() == max_size) {
        return;
      }
      for (size_t i = start; i < n; ++i) {
        pick.push_back(i);
        self(self, i + 1);
        pick.pop_back();
      }
    };
    recurse(recurse, 0);
  }
  return {unique.begin(), unique.end()};
}

}  // namespace blink
