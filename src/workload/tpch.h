// TPC-H-lite workload (paper §6.1).
//
// The paper runs TPC-H at scale factor 1000 (1 TB) and maps the 22 benchmark
// queries to 6 unique templates over lineitem. This module generates a
// row-scaled lineitem table with the standard value domains plus an orders
// dimension table, and the 6-template workload whose column sets match the
// families reported in Fig 6(b): [orderkey suppkey], [commitdt receiptdt],
// [quantity], [discount], [shipmode], and a residual template.
#ifndef BLINKDB_WORKLOAD_TPCH_H_
#define BLINKDB_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/optimizer/sample_planner.h"
#include "src/storage/table.h"
#include "src/util/rng.h"

namespace blink {

struct TpchConfig {
  uint64_t lineitem_rows = 600'000;  // ~SF 0.1 row count
  uint64_t num_orders = 150'000;
  uint64_t num_parts = 20'000;
  uint64_t num_suppliers = 1'000;
  uint64_t rng_seed = 1000;
};

// lineitem: orderkey INT64, partkey INT64, suppkey INT64, quantity INT64,
// extendedprice DOUBLE, discount DOUBLE, tax DOUBLE, returnflag STRING,
// linestatus STRING, shipdate INT64, commitdt INT64, receiptdt INT64,
// shipmode STRING.
Table GenerateLineitem(const TpchConfig& config);

// orders dimension: orderkey INT64, custkey INT64, orderstatus STRING,
// totalprice DOUBLE, orderdate INT64, orderpriority STRING.
Table GenerateOrders(const TpchConfig& config);

// The 6 unique query templates of §6.1.
std::vector<WorkloadTemplate> TpchTemplates();

// Renders a concrete lineitem aggregation query for a template (HiveQL-style,
// as the paper modified the TPC-H queries to conform). Deterministic in rng.
std::string InstantiateTpchQuery(const Table& lineitem, const WorkloadTemplate& tmpl,
                                 const std::string& bound_clause, Rng& rng);

}  // namespace blink

#endif  // BLINKDB_WORKLOAD_TPCH_H_
