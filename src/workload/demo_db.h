// Shared builder for the demo serving state: the synthetic Conviva-like
// sessions table plus its stratified sample families — optionally sliced to
// one shard of a distributed deployment.
//
// Sharding is deterministic row striping: shard i of N keeps exactly the rows
// whose index in the full generated table satisfies row % N == i. Every
// shard (and the coordinator's in-process selfcheck reference) generates the
// SAME full table from the same seed and slices it, so N workers booted with
// BuildConvivaDemo(i, N) hold a disjoint partition of one well-defined table,
// and each shard's sample families — built on its own slice — are valid
// stratified samples of that slice (block prefixes of a per-shard random
// permutation, the invariant the §4.3 estimators need).
#ifndef BLINKDB_WORKLOAD_DEMO_DB_H_
#define BLINKDB_WORKLOAD_DEMO_DB_H_

#include <cstdint>

#include "src/api/blinkdb.h"

namespace blink {

struct DemoDbOptions {
  // Rows of the FULL table; a shard holds ~rows/shard_count of them.
  uint64_t rows = 120'000;
  // Shard role: keep rows where row % shard_count == shard_index.
  // shard_count 0 (the default) keeps the whole table.
  uint64_t shard_index = 0;
  uint64_t shard_count = 0;
  // Cardinalities the demo server has always used (tests may shrink them).
  uint64_t num_cities = 500;
  uint64_t num_urls = 5'000;
  // Pretend the full stand-in is this many bytes so sampling clearly wins
  // (the per-shard scale factor is derived from the FULL table's width, so N
  // shards together model exactly one paper_bytes-sized table).
  double paper_bytes = 1e12;
  // Skip CompressStorage (tests exercising the raw path).
  bool compress = true;
};

// Registers the (possibly sharded) "sessions" table into `db`, builds the
// stratified sample families for the Conviva template workload, and encodes
// compressed storage. Deterministic in `options` alone.
Status BuildConvivaDemo(BlinkDB& db, const DemoDbOptions& options = {});

}  // namespace blink

#endif  // BLINKDB_WORKLOAD_DEMO_DB_H_
