#include "src/workload/tpch.h"

#include <cmath>

#include "src/stats/distributions.h"

namespace blink {
namespace {

const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
const char* kReturnFlags[] = {"R", "A", "N"};
const char* kLineStatus[] = {"O", "F"};
const char* kOrderStatus[] = {"O", "F", "P"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                             "5-LOW"};

}  // namespace

Table GenerateLineitem(const TpchConfig& config) {
  Table t(Schema({{"orderkey", DataType::kInt64},
                  {"partkey", DataType::kInt64},
                  {"suppkey", DataType::kInt64},
                  {"quantity", DataType::kInt64},
                  {"extendedprice", DataType::kDouble},
                  {"discount", DataType::kDouble},
                  {"tax", DataType::kDouble},
                  {"returnflag", DataType::kString},
                  {"linestatus", DataType::kString},
                  {"shipdate", DataType::kInt64},
                  {"commitdt", DataType::kInt64},
                  {"receiptdt", DataType::kInt64},
                  {"shipmode", DataType::kString}}));
  t.Reserve(config.lineitem_rows);
  Rng rng(config.rng_seed);
  // Supplier activity is mildly skewed in real warehouses; TPC-H itself is
  // uniform, so use a gentle Zipf to give stratification something to do
  // without distorting the benchmark's character.
  const ZipfGenerator supp_gen(0.8, config.num_suppliers);
  const ZipfGenerator part_gen(0.6, config.num_parts);

  for (uint64_t i = 0; i < config.lineitem_rows; ++i) {
    const int64_t orderkey = static_cast<int64_t>(rng.NextBounded(config.num_orders)) + 1;
    const int64_t quantity = rng.NextInt(1, 50);
    const double price = (900.0 + static_cast<double>(part_gen.Next(rng)) / 10.0) *
                         static_cast<double>(quantity);
    const int64_t shipdate = rng.NextInt(0, 2525);  // days across 7 years
    t.AppendInt(0, orderkey);
    t.AppendInt(1, static_cast<int64_t>(part_gen.Next(rng)));
    t.AppendInt(2, static_cast<int64_t>(supp_gen.Next(rng)));
    t.AppendInt(3, quantity);
    t.AppendDouble(4, price);
    t.AppendDouble(5, static_cast<double>(rng.NextInt(0, 10)) / 100.0);
    t.AppendDouble(6, static_cast<double>(rng.NextInt(0, 8)) / 100.0);
    t.AppendString(7, kReturnFlags[rng.NextBounded(3)]);
    t.AppendString(8, kLineStatus[rng.NextBounded(2)]);
    t.AppendInt(9, shipdate);
    // Commit/receipt at month granularity: row-scaled stand-ins keep the
    // (commitdt, receiptdt) pair cardinality in a range where stratification
    // caps bind, matching the role this family plays in Fig 6(b).
    t.AppendInt(10, (shipdate + rng.NextInt(-30, 60)) / 30);
    t.AppendInt(11, (shipdate + rng.NextInt(1, 30)) / 30);
    t.AppendString(12, kShipModes[rng.NextBounded(7)]);
    t.CommitRow();
  }
  return t;
}

Table GenerateOrders(const TpchConfig& config) {
  Table t(Schema({{"orderkey", DataType::kInt64},
                  {"custkey", DataType::kInt64},
                  {"orderstatus", DataType::kString},
                  {"totalprice", DataType::kDouble},
                  {"orderdate", DataType::kInt64},
                  {"orderpriority", DataType::kString}}));
  t.Reserve(config.num_orders);
  Rng rng(config.rng_seed + 1);
  for (uint64_t i = 0; i < config.num_orders; ++i) {
    t.AppendInt(0, static_cast<int64_t>(i) + 1);
    t.AppendInt(1, rng.NextInt(1, 15'000));
    t.AppendString(2, kOrderStatus[rng.NextBounded(3)]);
    t.AppendDouble(3, 1000.0 + rng.NextDouble() * 400'000.0);
    t.AppendInt(4, rng.NextInt(0, 2525));
    t.AppendString(5, kPriorities[rng.NextBounded(5)]);
    t.CommitRow();
  }
  return t;
}

std::vector<WorkloadTemplate> TpchTemplates() {
  // The 22 TPC-H queries collapse to 6 templates (§6.1); the sets below match
  // the families reported in Fig 6(b), with trace-like weights (Fig 7(b)
  // annotates T1..T6 with 18/27/14/32/4.5/4.5%).
  return {
      {{"orderkey", "suppkey"}, 0.18},
      {{"commitdt", "receiptdt"}, 0.27},
      {{"quantity"}, 0.14},
      {{"discount"}, 0.32},
      {{"shipmode"}, 0.045},
      {{"returnflag", "linestatus"}, 0.045},
  };
}

std::string InstantiateTpchQuery(const Table& lineitem, const WorkloadTemplate& tmpl,
                                 const std::string& bound_clause, Rng& rng) {
  std::string sql =
      rng.NextBernoulli(0.5) ? "SELECT SUM(extendedprice)" : "SELECT AVG(quantity)";
  sql += " FROM lineitem WHERE ";
  for (size_t i = 0; i < tmpl.columns.size(); ++i) {
    if (i > 0) {
      sql += " AND ";
    }
    const auto& col = tmpl.columns[i];
    const auto idx = lineitem.schema().FindColumn(col);
    const uint64_t row = rng.NextBounded(lineitem.num_rows());
    const Value v = lineitem.GetValue(*idx, row);
    // Keys and dates get range predicates (equality would select ~one order);
    // small-domain columns get equality.
    const bool range_column = col == "orderkey" || col == "suppkey" ||
                              col == "partkey" || col == "shipdate" ||
                              col == "commitdt" || col == "receiptdt" ||
                              v.is_double();
    if (range_column) {
      sql += col + " >= " + v.ToString();
    } else {
      sql += col + " = " + v.ToString();
    }
  }
  if (!bound_clause.empty()) {
    sql += " " + bound_clause;
  }
  return sql;
}

}  // namespace blink
