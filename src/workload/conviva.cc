#include "src/workload/conviva.h"

#include <cmath>

#include "src/stats/distributions.h"

namespace blink {
namespace {

const char* kGenres[] = {"western", "comedy",  "drama",   "news",    "sports",
                         "horror",  "romance", "scifi",   "kids",    "music",
                         "action",  "anime",   "classic", "reality", "talk",
                         "crime",   "doc",     "fantasy", "history", "nature"};
const char* kOses[] = {"Windows", "OSX", "Linux", "iOS", "Android", "Other"};
const double kOsWeights[] = {0.45, 0.18, 0.05, 0.17, 0.13, 0.02};
const char* kBrowsers[] = {"Chrome", "Firefox", "IE", "Safari", "Opera", "Edge", "Other"};
const double kBrowserWeights[] = {0.35, 0.22, 0.18, 0.15, 0.04, 0.04, 0.02};

size_t WeightedPick(Rng& rng, const double* weights, size_t n) {
  double u = rng.NextDouble();
  for (size_t i = 0; i < n; ++i) {
    if (u < weights[i]) {
      return i;
    }
    u -= weights[i];
  }
  return n - 1;
}

}  // namespace

Table GenerateConvivaTable(const ConvivaConfig& config) {
  Rng rng(config.rng_seed);
  return GenerateConvivaArrivals(config, config.num_rows, rng);
}

Table GenerateConvivaArrivals(const ConvivaConfig& config, uint64_t num_rows,
                              Rng& rng) {
  Table t(Schema({{"dt", DataType::kInt64},
                  {"city", DataType::kString},
                  {"country", DataType::kString},
                  {"customer_id", DataType::kInt64},
                  {"asn", DataType::kInt64},
                  {"url", DataType::kString},
                  {"genre", DataType::kString},
                  {"os", DataType::kString},
                  {"browser", DataType::kString},
                  {"isp", DataType::kString},
                  {"endedflag", DataType::kInt64},
                  {"jointimems", DataType::kDouble},
                  {"sessiontimems", DataType::kDouble},
                  {"bufferingms", DataType::kDouble},
                  {"bitrate", DataType::kDouble}}));
  t.Reserve(num_rows);

  const ZipfGenerator city_gen(1.1, config.num_cities);
  const ZipfGenerator country_gen(1.4, config.num_countries);
  const ZipfGenerator customer_gen(1.3, config.num_customers);
  const ZipfGenerator asn_gen(1.2, config.num_asns);
  const ZipfGenerator url_gen(1.5, config.num_urls);
  const ZipfGenerator isp_gen(1.1, config.num_isps);

  for (uint64_t i = 0; i < num_rows; ++i) {
    const uint64_t city = city_gen.Next(rng);
    t.AppendInt(0, static_cast<int64_t>(rng.NextBounded(config.num_days)));
    t.AppendString(1, "city_" + std::to_string(city));
    t.AppendString(2, "country_" + std::to_string(country_gen.Next(rng)));
    t.AppendInt(3, static_cast<int64_t>(customer_gen.Next(rng)));
    t.AppendInt(4, static_cast<int64_t>(asn_gen.Next(rng)));
    t.AppendString(5, "url_" + std::to_string(url_gen.Next(rng)));
    // Genre is uniformly distributed on purpose: the §2.3 example notes the
    // optimizer should skip it because the uniform sample serves it well.
    t.AppendString(6, kGenres[rng.NextBounded(20)]);
    t.AppendString(7, kOses[WeightedPick(rng, kOsWeights, 6)]);
    t.AppendString(8, kBrowsers[WeightedPick(rng, kBrowserWeights, 7)]);
    // ISPs are regional: each city is dominated by a few providers, making
    // the (city, isp) joint distribution heavily skewed (the drill-down
    // slices §6.3.2 studies).
    const uint64_t isp = 1 + (city + isp_gen.Next(rng)) % config.num_isps;
    t.AppendString(9, "isp_" + std::to_string(isp));
    t.AppendInt(10, rng.NextBernoulli(0.85) ? 1 : 0);
    // Join time: lognormal-ish, most sessions join fast.
    t.AppendDouble(11, std::exp(rng.NextGaussian() * 0.9 + 5.0));
    // Session time: heavy-tailed positive.
    t.AppendDouble(12, std::exp(rng.NextGaussian() * 1.1 + 11.0));
    t.AppendDouble(13, NextExponential(rng, 1.0 / 800.0));
    t.AppendDouble(14, 300.0 + rng.NextDouble() * 4500.0);
    t.CommitRow();
  }
  return t;
}

std::vector<WorkloadTemplate> ConvivaTemplates() {
  // Weights shaped like Fig 2 / the 42-template trace collapsed to its most
  // frequent shapes. Column sets echo the families of Fig 6(a).
  return {
      {{"dt", "customer_id"}, 0.20},
      {{"url", "customer_id"}, 0.10},
      {{"dt", "city"}, 0.14},
      {{"country", "endedflag"}, 0.10},
      {{"dt", "country"}, 0.09},
      {{"city"}, 0.08},
      {{"genre"}, 0.07},  // uniform column: well served by a uniform sample
      {{"os", "browser"}, 0.06},
      {{"isp", "city"}, 0.10},
      {{"asn"}, 0.03},
      {{"customer_id", "city", "dt"}, 0.02},
      {{"genre", "city"}, 0.01},
  };
}

std::string InstantiateConvivaQuery(const Table& table, const WorkloadTemplate& tmpl,
                                    const std::string& bound_clause, Rng& rng) {
  // Split template columns: one becomes the GROUP BY, the rest filter.
  // Low-cardinality columns are eligible GROUP BY keys (grouping on a
  // 100k-value column would make per-group error bars meaningless).
  auto groupable = [](const std::string& col) {
    for (const char* ok : {"dt", "country", "os", "browser", "genre", "isp", "endedflag"}) {
      if (col == ok) {
        return true;
      }
    }
    return false;
  };
  // High-cardinality integer keys get range predicates; equality on them
  // would select a handful of rows out of millions.
  auto range_column = [](const std::string& col) {
    return col == "customer_id" || col == "asn";
  };

  std::vector<std::string> where_cols = tmpl.columns;
  std::string group_col;
  if (where_cols.size() > 1 && rng.NextBernoulli(0.5) && groupable(where_cols.back())) {
    group_col = where_cols.back();
    where_cols.pop_back();
  }
  std::string sql = rng.NextBernoulli(0.5) ? "SELECT AVG(sessiontimems)"
                                           : "SELECT COUNT(*)";
  sql += " FROM sessions";
  if (!where_cols.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < where_cols.size(); ++i) {
      if (i > 0) {
        sql += " AND ";
      }
      const auto col_idx = table.schema().FindColumn(where_cols[i]);
      const uint64_t row = rng.NextBounded(table.num_rows());
      const Value v = table.GetValue(*col_idx, row);
      // Continuous columns get range predicates (point equality on a double
      // would select ~1 row); high-cardinality keys get ranges too;
      // categorical columns get equality.
      if (v.is_double()) {
        sql += where_cols[i] + " >= " + v.ToString();
      } else if (range_column(where_cols[i])) {
        sql += where_cols[i] + " <= " + v.ToString();
      } else {
        sql += where_cols[i] + " = " + v.ToString();
      }
    }
  }
  if (!group_col.empty()) {
    sql += " GROUP BY " + group_col;
  }
  if (!bound_clause.empty()) {
    sql += " " + bound_clause;
  }
  return sql;
}

}  // namespace blink
