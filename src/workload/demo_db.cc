#include "src/workload/demo_db.h"

#include <utility>
#include <vector>

#include "src/workload/conviva.h"

namespace blink {

Status BuildConvivaDemo(BlinkDB& db, const DemoDbOptions& options) {
  if (options.shard_count > 0 && options.shard_index >= options.shard_count) {
    return Status::InvalidArgument("shard_index must be < shard_count");
  }
  ConvivaConfig data;
  data.num_rows = options.rows;
  data.num_cities = options.num_cities;
  data.num_urls = options.num_urls;
  Table sessions = GenerateConvivaTable(data);
  // Scale from the FULL table's width: shard i then models paper_bytes/N of
  // the paper-scale table, and the N shards together model all of it.
  const double scale =
      options.paper_bytes /
      (static_cast<double>(options.rows) * sessions.EstimatedBytesPerRow());
  if (options.shard_count > 1) {
    std::vector<uint64_t> keep;
    keep.reserve(static_cast<size_t>(options.rows / options.shard_count) + 1);
    for (uint64_t row = options.shard_index; row < sessions.num_rows();
         row += options.shard_count) {
      keep.push_back(row);
    }
    sessions = sessions.SelectRows(keep);
  }
  BLINK_RETURN_IF_ERROR(db.RegisterTable("sessions", std::move(sessions), scale));
  PlannerConfig planner;
  planner.budget_fraction = 0.5;
  planner.cap_k = 500;
  planner.max_columns_per_set = 2;
  planner.uniform_fraction = 0.1;
  auto plan = db.BuildSamples("sessions", ConvivaTemplates(), planner);
  if (!plan.ok()) {
    return plan.status();
  }
  if (options.compress) {
    BLINK_RETURN_IF_ERROR(db.CompressStorage("sessions"));
  }
  return Status::Ok();
}

}  // namespace blink
