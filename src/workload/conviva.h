// Conviva-like workload (paper §6.1).
//
// The paper evaluates on a 17 TB, 5.5-billion-row, 104-column fact table of
// video-session records from Conviva Inc, plus a 2-year query trace (19,296
// queries, 42 templates). Neither is public, so this module generates a
// synthetic stand-in with the same *decision-relevant* structure: Zipfian
// key columns with realistic cardinalities (city, country, ASN, customer),
// deliberately uniform columns (genre — which the optimizer should therefore
// NOT stratify on, §2.3), session-quality metrics for aggregation, and a
// weighted template workload shaped like the paper's Figures 2/6(a).
// The remaining ~88 payload columns of the real table affect only row width,
// which callers absorb into the catalog scale factor.
#ifndef BLINKDB_WORKLOAD_CONVIVA_H_
#define BLINKDB_WORKLOAD_CONVIVA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/optimizer/sample_planner.h"
#include "src/sql/ast.h"
#include "src/storage/table.h"
#include "src/util/rng.h"

namespace blink {

struct ConvivaConfig {
  uint64_t num_rows = 500'000;
  uint64_t num_days = 30;         // dt cardinality
  uint64_t num_cities = 2'000;    // Zipf 1.1
  uint64_t num_countries = 200;   // Zipf 1.4
  uint64_t num_customers = 5'000; // Zipf 1.3
  uint64_t num_asns = 3'000;      // Zipf 1.2
  uint64_t num_urls = 50'000;     // Zipf 1.5 (heavy tail)
  uint64_t num_isps = 50;         // Zipf 1.1
  uint64_t rng_seed = 2013;
};

// Generates the synthetic Conviva-like sessions fact table. Columns:
//   dt INT64, city STRING, country STRING, customer_id INT64, asn INT64,
//   url STRING, genre STRING (uniform!), os STRING, browser STRING,
//   isp STRING, endedflag INT64, jointimems DOUBLE, sessiontimems DOUBLE,
//   bufferingms DOUBLE, bitrate DOUBLE
Table GenerateConvivaTable(const ConvivaConfig& config);

// Generates a batch of freshly-arrived session rows — same schema and
// per-column distributions as GenerateConvivaTable — for streaming-ingest
// scenarios (BlinkDB::Append, the wire APPEND frame, the ingest bench).
// Deterministic in `rng`: GenerateConvivaTable(config) is bit-identical to
// one call with Rng(config.rng_seed) and num_rows = config.num_rows.
Table GenerateConvivaArrivals(const ConvivaConfig& config, uint64_t num_rows,
                              Rng& rng);

// The weighted template workload (column sets of WHERE/GROUP BY clauses).
// Shapes match Fig 2 / Fig 6(a): heavy weight on {dt, jointimems}-style
// diagnostic templates, some weight on genre-only templates that the uniform
// sample should serve.
std::vector<WorkloadTemplate> ConvivaTemplates();

// Renders a concrete ad-hoc query for a template: random predicate constants
// drawn from the table's actual values, AVG(sessiontimems) or COUNT(*), and
// the given bound clause (may be empty). Deterministic in `rng`.
std::string InstantiateConvivaQuery(const Table& table, const WorkloadTemplate& tmpl,
                                    const std::string& bound_clause, Rng& rng);

}  // namespace blink

#endif  // BLINKDB_WORKLOAD_CONVIVA_H_
