// A Dataset is what the executor scans: either an exact table or a sample
// of one. Samples carry per-row effective sampling rates (§4.3) expressed as
// weights (weight = N_h / n_h = 1 / rate) plus per-row stratum ids, so the
// executor can compute unbiased answers and closed-form error bounds.
#ifndef BLINKDB_EXEC_DATASET_H_
#define BLINKDB_EXEC_DATASET_H_

#include <cstdint>
#include <vector>

#include "src/exec/morsel.h"
#include "src/storage/table.h"

namespace blink {

// Population/sample row counts for one stratum.
struct StratumCounts {
  double total_rows = 0.0;    // N_h in the original table
  double sampled_rows = 0.0;  // n_h rows present in this dataset
};

// Non-owning view over a table (exact) or a sample of it.
//
// Multi-resolution samples (§3.1 / Fig 4) store their physical rows
// smallest-resolution-first, so a logical sample is a *prefix* of the row
// store; `scan_rows` restricts the scan to that prefix. This is also what
// makes intermediate-data reuse (§4.4) work: a larger resolution's scan is a
// superset of a smaller one's.
struct Dataset {
  const Table* table = nullptr;

  // Null for exact tables. Otherwise one weight per row (>= 1.0). May also be
  // null for samples whose weights derive from stratum_counts (the common
  // case for multi-resolution families).
  const std::vector<double>* weights = nullptr;
  // Null for exact tables / uniform samples (stratum 0 everywhere).
  const std::vector<uint32_t>* strata = nullptr;
  // Per-stratum counts. For exact tables this may be empty (implied
  // {n, n}); for samples it must cover every stratum id used.
  const std::vector<StratumCounts>* stratum_counts = nullptr;
  // 0 = scan the whole table; otherwise scan rows [0, scan_rows).
  uint64_t scan_rows = 0;
  // Ascending logical-prefix row counts of the family this dataset views
  // (one per resolution). Morsel carving cuts at these, so every resolution
  // is a whole number of blocks and §4.4 reuse is exact block arithmetic.
  // Null for standalone tables.
  const std::vector<uint64_t>* prefix_boundaries = nullptr;

  bool is_exact() const { return weights == nullptr && stratum_counts == nullptr; }

  uint64_t NumRows() const {
    if (table == nullptr) {
      return 0;
    }
    return scan_rows == 0 ? table->num_rows() : scan_rows;
  }

  double RowWeight(uint64_t row) const {
    if (weights != nullptr) {
      return (*weights)[row];
    }
    if (stratum_counts != nullptr) {
      const StratumCounts& c = (*stratum_counts)[RowStratum(row)];
      return c.sampled_rows > 0.0 ? c.total_rows / c.sampled_rows : 1.0;
    }
    return 1.0;
  }
  uint32_t RowStratum(uint64_t row) const {
    return strata == nullptr ? 0 : (*strata)[row];
  }

  // Counts for stratum `id`, defaulting to the exact-table convention.
  StratumCounts CountsFor(uint32_t id) const {
    if (stratum_counts != nullptr && id < stratum_counts->size()) {
      return (*stratum_counts)[id];
    }
    const double n = table == nullptr ? 0.0 : static_cast<double>(table->num_rows());
    return {n, n};
  }

  // Block decomposition of this dataset's scan range, prefix-aligned.
  MorselPlan PlanMorsels(uint32_t target_rows = kDefaultMorselRows) const {
    return CarveMorsels(NumRows(), target_rows, prefix_boundaries);
  }

  // Convenience: exact view of a table.
  static Dataset Exact(const Table& t) {
    Dataset d;
    d.table = &t;
    return d;
  }
};

}  // namespace blink

#endif  // BLINKDB_EXEC_DATASET_H_
