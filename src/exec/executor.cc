#include "src/exec/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "src/exec/predicate.h"
#include "src/sql/analyzer.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace blink {
namespace {

// Per-(group, aggregate, stratum) running sums.
struct StratumCell {
  double matched = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

// Per-(group, aggregate) accumulator. Cells are indexed by stratum id, which
// fixes a canonical stratum order for finalization: both the scalar and the
// morsel path sum strata ascending by id. Stratum 0 (the only stratum for
// exact tables and uniform samples) lives inline so the common case costs no
// allocation per (morsel, group, aggregate).
struct AggAccum {
  // For COUNT/SUM/AVG: per-stratum cells; an untouched cell has matched == 0.
  StratumCell cell0;                // stratum 0
  std::vector<StratumCell> higher;  // stratum s >= 1 at higher[s - 1]
  // For QUANTILE: (value, weight) reservoir (unbounded at our scales).
  std::vector<std::pair<double, double>> values;

  StratumCell& CellFor(uint32_t stratum) {
    if (stratum == 0) {
      return cell0;
    }
    if (stratum > higher.size()) {
      higher.resize(stratum);
    }
    return higher[stratum - 1];
  }
  uint32_t num_strata() const { return static_cast<uint32_t>(higher.size()) + 1; }
  const StratumCell& cell(uint32_t stratum) const {
    return stratum == 0 ? cell0 : higher[stratum - 1];
  }
};

struct GroupState {
  // Fact (and dim) row that first produced this group. Group values are
  // materialized from it at finalize time, so per-morsel partials never copy
  // Values around.
  uint64_t first_row = 0;
  uint64_t first_dim_row = 0;
  std::vector<AggAccum> aggs;
};

using GroupMap = std::unordered_map<std::vector<int64_t>, GroupState, KeyHash>;

// Resolved aggregate argument.
struct BoundAgg {
  AggExpr agg;
  ColumnRef arg;  // unused when count_star
};

// Everything resolved once per query, shared by the scalar and morsel paths.
struct BoundQuery {
  const Table* table = nullptr;
  const Table* dim = nullptr;
  std::vector<ColumnRef> group_cols;
  std::vector<std::string> group_names;
  std::vector<BoundAgg> aggs;
  std::vector<std::string> agg_names;
  std::optional<CompiledPredicate> where;
  // Equi-join: dim key (as the fact table's cell key) -> dim row.
  std::unordered_map<int64_t, uint64_t> join_index;
  std::optional<size_t> join_fact_col;
};

Result<BoundQuery> BindQuery(const SelectStatement& stmt, const Dataset& fact,
                             const Table* dim) {
  if (fact.table == nullptr) {
    return Status::InvalidArgument("dataset has no table");
  }
  BoundQuery bq;
  bq.table = fact.table;
  bq.dim = dim;
  const Table& table = *fact.table;
  // Dimension columns are only addressable through a JOIN: without one there
  // is no dim row to read, so the dim schema is invisible to resolution and
  // such references fail cleanly as unknown columns.
  const Schema* dim_schema =
      dim != nullptr && stmt.join.has_value() ? &dim->schema() : nullptr;
  BLINK_RETURN_IF_ERROR(ValidateQuery(stmt, table.schema(), dim_schema));

  for (const auto& g : stmt.group_by) {
    auto ref = ResolveColumn(g, table.schema(), dim_schema);
    if (!ref.ok()) {
      return ref.status();
    }
    bq.group_cols.push_back(*ref);
    bq.group_names.push_back(g);
  }
  for (const auto& item : stmt.items) {
    if (!item.is_aggregate) {
      continue;
    }
    BoundAgg bound;
    bound.agg = item.agg;
    if (!item.agg.count_star) {
      auto ref = ResolveColumn(item.agg.column, table.schema(), dim_schema);
      if (!ref.ok()) {
        return ref.status();
      }
      bound.arg = *ref;
    }
    bq.aggs.push_back(bound);
    bq.agg_names.push_back(SelectItemName(item));
  }

  if (stmt.where.has_value()) {
    auto compiled = CompiledPredicate::Compile(
        *stmt.where, table, stmt.join.has_value() ? dim : nullptr);
    if (!compiled.ok()) {
      return compiled.status();
    }
    bq.where = std::move(compiled.value());
  }

  // Build the join hash table (dim key -> first dim row). Per §2.1 the
  // dimension side is an exact in-memory table (typically a foreign key
  // target, so keys are unique).
  if (stmt.join.has_value()) {
    if (dim == nullptr) {
      return Status::InvalidArgument("join requested but no dimension table provided");
    }
    bq.join_fact_col = table.schema().FindColumn(stmt.join->left_column);
    const auto join_dim_col = dim->schema().FindColumn(stmt.join->right_column);
    bq.join_index.reserve(dim->num_rows());
    const bool string_key =
        table.schema().column(*bq.join_fact_col).type == DataType::kString;
    for (uint64_t r = 0; r < dim->num_rows(); ++r) {
      if (string_key) {
        // Dictionary codes differ between tables; key the index by the FACT
        // table's code for the dim row's string (absent => unjoinable).
        const int32_t fact_code =
            table.column(*bq.join_fact_col).dict->Find(dim->GetString(*join_dim_col, r));
        if (fact_code >= 0) {
          bq.join_index.emplace(fact_code, r);
        }
      } else {
        bq.join_index.emplace(dim->CellKey(*join_dim_col, r), r);
      }
    }
  }
  return bq;
}

// Evaluates a HAVING predicate over a finished result row. Columns resolve to
// group values (by name) or aggregate estimates (by display name or alias).
bool EvalHaving(const Predicate& pred, const ResultRow& row,
                const std::vector<std::string>& group_names,
                const std::vector<std::string>& agg_names) {
  switch (pred.kind) {
    case Predicate::Kind::kAnd:
      for (const auto& child : pred.children) {
        if (!EvalHaving(child, row, group_names, agg_names)) {
          return false;
        }
      }
      return true;
    case Predicate::Kind::kOr:
      for (const auto& child : pred.children) {
        if (EvalHaving(child, row, group_names, agg_names)) {
          return true;
        }
      }
      return false;
    case Predicate::Kind::kCompare:
      break;
  }
  // Locate the referenced value.
  Value cell;
  bool found = false;
  for (size_t i = 0; i < group_names.size(); ++i) {
    if (EqualsIgnoreCase(group_names[i], pred.column)) {
      cell = row.group_values[i];
      found = true;
      break;
    }
  }
  if (!found) {
    for (size_t i = 0; i < agg_names.size(); ++i) {
      if (EqualsIgnoreCase(agg_names[i], pred.column)) {
        cell = Value(row.aggregates[i].value);
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return false;
  }
  if (cell.is_string() != pred.literal.is_string()) {
    return false;
  }
  if (cell.is_string()) {
    const bool eq = cell.AsString() == pred.literal.AsString();
    return pred.op == CompareOp::kEq ? eq : pred.op == CompareOp::kNe && !eq;
  }
  const double lhs = cell.AsNumeric();
  const double rhs = pred.literal.AsNumeric();
  switch (pred.op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// Deterministic output order: lexicographic on group values.
bool GroupValueLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) {
      continue;
    }
    if (a[i].is_string() && b[i].is_string()) {
      return a[i].AsString() < b[i].AsString();
    }
    return a[i].AsNumeric() < b[i].AsNumeric();
  }
  return a.size() < b.size();
}

// Turns finished accumulators into the result: estimates per group (strata
// summed ascending by id), HAVING, and the deterministic group sort.
Result<QueryResult> Finalize(const SelectStatement& stmt, const Dataset& fact,
                             const BoundQuery& bq, GroupMap groups, ScanStats stats) {
  QueryResult result;
  result.group_names = bq.group_names;
  result.aggregate_names = bq.agg_names;
  result.stats = stats;
  if (stmt.bounds.kind == QueryBounds::Kind::kError || stmt.report_error_columns) {
    result.confidence = stmt.bounds.confidence;
  }

  // SQL semantics: a global aggregate (no GROUP BY) always yields one row,
  // even when nothing matched.
  if (groups.empty() && bq.group_cols.empty()) {
    GroupState empty_group;
    empty_group.aggs.resize(bq.aggs.size());
    groups.emplace(std::vector<int64_t>{}, std::move(empty_group));
  }

  result.rows.reserve(groups.size());
  for (auto& [group_key, group] : groups) {
    (void)group_key;
    ResultRow row;
    row.group_values.reserve(bq.group_cols.size());
    for (const auto& ref : bq.group_cols) {
      row.group_values.push_back(ref.side == TableSide::kFact
                                     ? bq.table->GetValue(ref.index, group.first_row)
                                     : bq.dim->GetValue(ref.index, group.first_dim_row));
    }
    row.aggregates.reserve(bq.aggs.size());
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound = bq.aggs[a];
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        Estimate q = WeightedQuantile(std::move(accum.values), bound.agg.quantile_p);
        if (fact.is_exact()) {
          q.variance = 0.0;  // computed over the entire population
        }
        row.aggregates.push_back(q);
        continue;
      }
      std::vector<StratumSummary> strata;
      strata.reserve(accum.num_strata());
      for (uint32_t stratum_id = 0; stratum_id < accum.num_strata(); ++stratum_id) {
        const StratumCell& cell = accum.cell(stratum_id);
        if (cell.matched == 0.0) {
          continue;  // untouched stratum: contributes nothing
        }
        const StratumCounts counts = fact.CountsFor(stratum_id);
        StratumSummary s;
        s.total_rows = counts.total_rows;
        s.sampled_rows = counts.sampled_rows;
        s.matched = cell.matched;
        s.sum = cell.sum;
        s.sum_sq = cell.sum_sq;
        strata.push_back(s);
      }
      switch (bound.agg.func) {
        case AggFunc::kCount:
          row.aggregates.push_back(StratifiedCount(strata));
          break;
        case AggFunc::kSum:
          row.aggregates.push_back(StratifiedSum(strata));
          break;
        case AggFunc::kAvg:
          row.aggregates.push_back(StratifiedAvg(strata));
          break;
        case AggFunc::kQuantile:
          break;  // handled above
      }
    }
    result.rows.push_back(std::move(row));
  }

  // HAVING filter on finished rows.
  if (stmt.having.has_value()) {
    std::vector<ResultRow> kept;
    kept.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (EvalHaving(*stmt.having, row, result.group_names, result.aggregate_names)) {
        kept.push_back(std::move(row));
      }
    }
    result.rows = std::move(kept);
  }

  std::sort(result.rows.begin(), result.rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return GroupValueLess(a.group_values, b.group_values);
            });
  return result;
}

// --- Morsel pipeline ----------------------------------------------------------

// Partial aggregation state of one morsel. Partials are merged in morsel
// index order, which fixes the floating-point summation order independent of
// the thread count or schedule.
struct MorselPartial {
  GroupMap groups;
  uint64_t rows_matched = 0;
};

// Reusable per-worker buffers: selection vector, join side-arrays, and
// per-column gather targets.
struct WorkerScratch {
  std::vector<uint32_t> sel;
  std::vector<uint64_t> dim_rows;
  std::vector<int64_t> join_keys;
  std::vector<int64_t> key;
  std::vector<std::vector<int64_t>> group_keys;  // one buffer per group column
  std::vector<std::vector<double>> agg_values;   // one buffer per aggregate
  PredicateScratch predicate;                    // OR-union buffers
  size_t group_hint = 0;  // groups seen in the previous morsel (reserve hint)
};

void ProcessMorsel(const BoundQuery& bq, const Dataset& fact, const Morsel& m,
                   WorkerScratch& s, MorselPartial& out) {
  const Table& table = *bq.table;
  const size_t n = static_cast<size_t>(m.rows());
  const bool joined = bq.join_fact_col.has_value();

  // 1. Candidate selection: all rows of the block, minus join misses.
  s.sel.resize(n);
  std::iota(s.sel.begin(), s.sel.end(), 0u);
  if (joined) {
    s.join_keys.resize(n);
    table.GatherCellKeys(*bq.join_fact_col, m.begin, s.sel.data(), n,
                         s.join_keys.data());
    s.dim_rows.resize(n);
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      const auto it = bq.join_index.find(s.join_keys[i]);
      if (it != bq.join_index.end()) {  // inner join: drop unmatched fact rows
        s.sel[kept] = static_cast<uint32_t>(i);
        s.dim_rows[kept] = it->second;
        ++kept;
      }
    }
    s.sel.resize(kept);
    s.dim_rows.resize(kept);
  }

  // 2. Vectorized predicate: narrow the selection block-at-a-time.
  if (bq.where.has_value()) {
    bq.where->FilterBlock(m.begin, s.sel, joined ? &s.dim_rows : nullptr,
                          &s.predicate);
  }
  const size_t cnt = s.sel.size();
  out.rows_matched += cnt;
  if (cnt == 0) {
    return;
  }

  // 3. Gather aggregate arguments once per block.
  s.agg_values.resize(bq.aggs.size());
  for (size_t a = 0; a < bq.aggs.size(); ++a) {
    const BoundAgg& bound = bq.aggs[a];
    if (bound.agg.func == AggFunc::kCount) {
      continue;
    }
    s.agg_values[a].resize(cnt);
    if (bound.arg.side == TableSide::kFact) {
      table.GatherNumeric(bound.arg.index, m.begin, s.sel.data(), cnt,
                          s.agg_values[a].data());
    } else {
      for (size_t i = 0; i < cnt; ++i) {
        s.agg_values[a][i] = bq.dim->GetNumeric(bound.arg.index, s.dim_rows[i]);
      }
    }
  }

  const uint32_t* strata =
      fact.strata != nullptr ? fact.strata->data() + m.begin : nullptr;

  // 4a. Global aggregate: one group, tight per-aggregate loops.
  if (bq.group_cols.empty()) {
    auto [it, inserted] = out.groups.try_emplace(std::vector<int64_t>{});
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(bq.aggs.size());
    }
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound = bq.aggs[a];
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        for (size_t i = 0; i < cnt; ++i) {
          accum.values.emplace_back(s.agg_values[a][i],
                                    fact.RowWeight(m.begin + s.sel[i]));
        }
      } else if (bound.agg.func == AggFunc::kCount) {
        if (strata == nullptr) {
          // Single stratum, unit values: the whole block folds into one add
          // (exact, so identical to row-at-a-time accumulation).
          StratumCell& cell = accum.CellFor(0);
          const double c = static_cast<double>(cnt);
          cell.matched += c;
          cell.sum += c;
          cell.sum_sq += c;
        } else {
          for (size_t i = 0; i < cnt; ++i) {
            StratumCell& cell = accum.CellFor(strata[s.sel[i]]);
            cell.matched += 1.0;
            cell.sum += 1.0;
            cell.sum_sq += 1.0;
          }
        }
      } else {
        const double* vals = s.agg_values[a].data();
        if (strata == nullptr) {
          StratumCell& cell = accum.CellFor(0);
          for (size_t i = 0; i < cnt; ++i) {
            const double v = vals[i];
            cell.matched += 1.0;
            cell.sum += v;
            cell.sum_sq += v * v;
          }
        } else {
          for (size_t i = 0; i < cnt; ++i) {
            const double v = vals[i];
            StratumCell& cell = accum.CellFor(strata[s.sel[i]]);
            cell.matched += 1.0;
            cell.sum += v;
            cell.sum_sq += v * v;
          }
        }
      }
    }
    return;
  }

  // 4b. Grouped aggregate: gather group keys per column, then accumulate.
  s.group_keys.resize(bq.group_cols.size());
  for (size_t j = 0; j < bq.group_cols.size(); ++j) {
    const ColumnRef& ref = bq.group_cols[j];
    s.group_keys[j].resize(cnt);
    if (ref.side == TableSide::kFact) {
      table.GatherCellKeys(ref.index, m.begin, s.sel.data(), cnt,
                           s.group_keys[j].data());
    } else {
      for (size_t i = 0; i < cnt; ++i) {
        s.group_keys[j][i] = bq.dim->CellKey(ref.index, s.dim_rows[i]);
      }
    }
  }
  if (s.group_hint > 0) {
    out.groups.reserve(s.group_hint);
  }
  for (size_t i = 0; i < cnt; ++i) {
    s.key.clear();
    for (size_t j = 0; j < bq.group_cols.size(); ++j) {
      s.key.push_back(s.group_keys[j][i]);
    }
    auto [it, inserted] = out.groups.try_emplace(s.key);
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(bq.aggs.size());
      group.first_row = m.begin + s.sel[i];
      group.first_dim_row = joined ? s.dim_rows[i] : 0;
    }
    const uint32_t stratum = strata != nullptr ? strata[s.sel[i]] : 0;
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound = bq.aggs[a];
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        accum.values.emplace_back(s.agg_values[a][i],
                                  fact.RowWeight(m.begin + s.sel[i]));
      } else {
        StratumCell& cell = accum.CellFor(stratum);
        cell.matched += 1.0;
        const double v =
            bound.agg.func == AggFunc::kCount ? 1.0 : s.agg_values[a][i];
        cell.sum += v;
        cell.sum_sq += v * v;
      }
    }
  }
  s.group_hint = out.groups.size();
}

// Merges morsel partials into `groups` strictly in morsel index order.
void MergePartials(std::vector<MorselPartial>& partials, size_t num_aggs,
                   GroupMap& groups, ScanStats& stats) {
  for (MorselPartial& partial : partials) {
    stats.rows_matched += partial.rows_matched;
    for (auto& [key, pg] : partial.groups) {
      auto [it, inserted] = groups.try_emplace(key);
      GroupState& group = it->second;
      if (inserted) {
        group.first_row = pg.first_row;
        group.first_dim_row = pg.first_dim_row;
        group.aggs.resize(num_aggs);
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        AggAccum& into = group.aggs[a];
        AggAccum& from = pg.aggs[a];
        if (!from.values.empty()) {
          into.values.insert(into.values.end(), from.values.begin(), from.values.end());
        }
        for (uint32_t s = 0; s < from.num_strata(); ++s) {
          const StratumCell& cell = from.cell(s);
          if (cell.matched == 0.0) {
            continue;
          }
          StratumCell& dst = into.CellFor(s);
          dst.matched += cell.matched;
          dst.sum += cell.sum;
          dst.sum_sq += cell.sum_sq;
        }
      }
    }
  }
}

}  // namespace

double QueryResult::MaxRelativeError(double conf) const {
  double worst = 0.0;
  for (const auto& row : rows) {
    for (const auto& est : row.aggregates) {
      if (est.variance <= 0.0) {
        continue;
      }
      worst = std::max(worst, est.RelativeErrorAt(conf));
    }
  }
  return worst;
}

std::string QueryResult::ToString() const {
  std::string out;
  for (const auto& name : group_names) {
    out += name + "\t";
  }
  for (const auto& name : aggregate_names) {
    out += name + "\t";
  }
  out += "\n";
  for (const auto& row : rows) {
    for (const auto& v : row.group_values) {
      out += v.is_string() ? v.AsString() : v.ToString();
      out += "\t";
    }
    for (const auto& est : row.aggregates) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4g +/- %.3g", est.value, est.ErrorAt(confidence));
      out += buf;
      out += "\t";
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim, const ExecutionOptions& options) {
  auto bound = BindQuery(stmt, fact, dim);
  if (!bound.ok()) {
    return bound.status();
  }
  const BoundQuery& bq = bound.value();
  const uint64_t n = fact.NumRows();
  const MorselPlan plan = fact.PlanMorsels(options.morsel_rows);

  ScanStats stats;
  stats.rows_scanned = n;
  stats.bytes_scanned = static_cast<double>(n) * bq.table->EstimatedBytesPerRow();
  stats.blocks_scanned = plan.num_blocks();
  stats.block_rows = plan.target_rows;

  std::vector<MorselPartial> partials(plan.morsels.size());
  const size_t workers =
      std::max<size_t>(1, std::min(options.num_threads, plan.morsels.size()));
  if (workers == 1) {
    WorkerScratch scratch;
    for (const Morsel& m : plan.morsels) {
      ProcessMorsel(bq, fact, m, scratch, partials[m.index]);
    }
  } else {
    // Morsel-driven scheduling: workers pull block indices from a shared
    // counter; any assignment of blocks to workers yields the same partials.
    std::atomic<size_t> next{0};
    auto work = [&] {
      WorkerScratch scratch;
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= plan.morsels.size()) {
          return;
        }
        ProcessMorsel(bq, fact, plan.morsels[i], scratch, partials[i]);
      }
    };
    if (options.pool != nullptr) {
      for (size_t w = 0; w < workers; ++w) {
        options.pool->Submit(work);
      }
      options.pool->Wait();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers - 1);
      for (size_t w = 0; w + 1 < workers; ++w) {
        threads.emplace_back(work);
      }
      work();
      for (auto& t : threads) {
        t.join();
      }
    }
  }

  GroupMap groups;
  MergePartials(partials, bq.aggs.size(), groups, stats);
  return Finalize(stmt, fact, bq, std::move(groups), stats);
}

Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim) {
  return ExecuteQuery(stmt, fact, dim, ExecutionOptions{});
}

Result<QueryResult> ExecuteQueryScalar(const SelectStatement& stmt, const Dataset& fact,
                                       const Table* dim) {
  auto bound = BindQuery(stmt, fact, dim);
  if (!bound.ok()) {
    return bound.status();
  }
  const BoundQuery& bq = bound.value();
  const Table& table = *bq.table;

  GroupMap groups;
  std::vector<int64_t> key;
  const uint64_t n = fact.NumRows();
  ScanStats stats;
  stats.rows_scanned = n;
  stats.bytes_scanned = static_cast<double>(n) * table.EstimatedBytesPerRow();
  stats.blocks_scanned = CountMorsels(n, kDefaultMorselRows, fact.prefix_boundaries);
  stats.block_rows = kDefaultMorselRows;
  for (uint64_t row = 0; row < n; ++row) {
    uint64_t dim_row = 0;
    if (bq.join_fact_col.has_value()) {
      const auto it = bq.join_index.find(table.CellKey(*bq.join_fact_col, row));
      if (it == bq.join_index.end()) {
        continue;  // inner join: drop unmatched fact rows
      }
      dim_row = it->second;
    }
    if (bq.where.has_value() && !bq.where->Matches(row, dim_row)) {
      continue;
    }
    ++stats.rows_matched;

    key.clear();
    for (const auto& ref : bq.group_cols) {
      key.push_back(ref.side == TableSide::kFact ? table.CellKey(ref.index, row)
                                                 : dim->CellKey(ref.index, dim_row));
    }
    auto [it, inserted] = groups.try_emplace(key);
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(bq.aggs.size());
      group.first_row = row;
      group.first_dim_row = dim_row;
    }

    const double weight = fact.RowWeight(row);
    const uint32_t stratum = fact.RowStratum(row);
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound_agg = bq.aggs[a];
      double x = 1.0;
      if (bound_agg.agg.func != AggFunc::kCount) {
        const Table& t = bound_agg.arg.side == TableSide::kFact ? table : *dim;
        const uint64_t r = bound_agg.arg.side == TableSide::kFact ? row : dim_row;
        x = t.GetNumeric(bound_agg.arg.index, r);
      }
      AggAccum& accum = group.aggs[a];
      if (bound_agg.agg.func == AggFunc::kQuantile) {
        accum.values.emplace_back(x, weight);
      } else {
        StratumCell& cell = accum.CellFor(stratum);
        cell.matched += 1.0;
        const double v = bound_agg.agg.func == AggFunc::kCount ? 1.0 : x;
        cell.sum += v;
        cell.sum_sq += v * v;
      }
    }
  }
  return Finalize(stmt, fact, bq, std::move(groups), stats);
}

}  // namespace blink
