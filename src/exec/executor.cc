#include "src/exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/exec/aggregation.h"
#include "src/exec/incremental.h"

namespace blink {

using exec_internal::AggAccum;
using exec_internal::BindQuery;
using exec_internal::BoundAgg;
using exec_internal::BoundQuery;
using exec_internal::Finalize;
using exec_internal::GroupMap;
using exec_internal::GroupState;
using exec_internal::StratumCell;

double QueryResult::MaxRelativeError(double conf) const {
  return MaxEstimateError(FlattenEstimates(*this), /*relative=*/true, conf);
}

std::string QueryResult::ToString() const {
  std::string out;
  for (const auto& name : group_names) {
    out += name + "\t";
  }
  for (const auto& name : aggregate_names) {
    out += name + "\t";
  }
  out += "\n";
  for (const auto& row : rows) {
    for (const auto& v : row.group_values) {
      out += v.is_string() ? v.AsString() : v.ToString();
      out += "\t";
    }
    for (const auto& est : row.aggregates) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4g +/- %.3g", est.value, est.ErrorAt(confidence));
      out += buf;
      out += "\t";
    }
    out += "\n";
  }
  return out;
}

// The one-shot executor is the streaming executor with the never-stop rule:
// one batch spanning every block, no intermediate finalization.
Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim, const ExecutionOptions& options) {
  StreamOptions stream;
  stream.exec = options;
  auto streamed = ExecuteQueryIncremental(stmt, fact, dim, stream);
  if (!streamed.ok()) {
    return streamed.status();
  }
  return std::move(streamed->result);
}

Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim) {
  return ExecuteQuery(stmt, fact, dim, ExecutionOptions{});
}

Result<QueryResult> ExecuteQueryScalar(const SelectStatement& stmt, const Dataset& fact,
                                       const Table* dim) {
  auto bound = BindQuery(stmt, fact, dim);
  if (!bound.ok()) {
    return bound.status();
  }
  const BoundQuery& bq = bound.value();
  const Table& table = *bq.table;

  GroupMap groups;
  std::vector<int64_t> key;
  const uint64_t n = fact.NumRows();
  ScanStats stats;
  stats.rows_scanned = n;
  stats.bytes_scanned = static_cast<double>(n) * table.EstimatedBytesPerRow();
  stats.blocks_scanned = CountMorsels(n, kDefaultMorselRows, fact.prefix_boundaries);
  stats.block_rows = kDefaultMorselRows;
  for (uint64_t row = 0; row < n; ++row) {
    uint64_t dim_row = 0;
    if (bq.join_fact_col.has_value()) {
      const auto it = bq.join_index.find(table.CellKey(*bq.join_fact_col, row));
      if (it == bq.join_index.end()) {
        continue;  // inner join: drop unmatched fact rows
      }
      dim_row = it->second;
    }
    if (bq.where.has_value() && !bq.where->Matches(row, dim_row)) {
      continue;
    }
    ++stats.rows_matched;

    key.clear();
    for (const auto& ref : bq.group_cols) {
      key.push_back(ref.side == TableSide::kFact ? table.CellKey(ref.index, row)
                                                 : dim->CellKey(ref.index, dim_row));
    }
    auto [it, inserted] = groups.try_emplace(key);
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(bq.aggs.size());
      group.first_row = row;
      group.first_dim_row = dim_row;
    }

    const uint32_t stratum = fact.RowStratum(row);
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound_agg = bq.aggs[a];
      double x = 1.0;
      if (bound_agg.agg.func != AggFunc::kCount) {
        const Table& t = bound_agg.arg.side == TableSide::kFact ? table : *dim;
        const uint64_t r = bound_agg.arg.side == TableSide::kFact ? row : dim_row;
        x = t.GetNumeric(bound_agg.arg.index, r);
      }
      AggAccum& accum = group.aggs[a];
      if (bound_agg.agg.func == AggFunc::kQuantile) {
        accum.values.emplace_back(x, row);
      } else {
        StratumCell& cell = accum.CellFor(stratum);
        cell.matched += 1.0;
        const double v = bound_agg.agg.func == AggFunc::kCount ? 1.0 : x;
        cell.sum += v;
        cell.sum_sq += v * v;
      }
    }
  }
  return Finalize(stmt, fact, bq, groups, stats, nullptr);
}

}  // namespace blink
