#include "src/exec/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/exec/predicate.h"
#include "src/sql/analyzer.h"
#include "src/util/string_util.h"

namespace blink {
namespace {

// Per-(group, aggregate, stratum) running sums.
struct StratumCell {
  double matched = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

// Per-(group, aggregate) accumulator.
struct AggAccum {
  // For COUNT/SUM/AVG: per-stratum cells.
  std::unordered_map<uint32_t, StratumCell> cells;
  // For QUANTILE: (value, weight) reservoir (unbounded at our scales).
  std::vector<std::pair<double, double>> values;
};

struct GroupState {
  std::vector<Value> group_values;
  std::vector<AggAccum> aggs;
};

// Resolved aggregate argument.
struct BoundAgg {
  AggExpr agg;
  ColumnRef arg;  // unused when count_star
};

// Evaluates a HAVING predicate over a finished result row. Columns resolve to
// group values (by name) or aggregate estimates (by display name or alias).
bool EvalHaving(const Predicate& pred, const ResultRow& row,
                const std::vector<std::string>& group_names,
                const std::vector<std::string>& agg_names) {
  switch (pred.kind) {
    case Predicate::Kind::kAnd:
      for (const auto& child : pred.children) {
        if (!EvalHaving(child, row, group_names, agg_names)) {
          return false;
        }
      }
      return true;
    case Predicate::Kind::kOr:
      for (const auto& child : pred.children) {
        if (EvalHaving(child, row, group_names, agg_names)) {
          return true;
        }
      }
      return false;
    case Predicate::Kind::kCompare:
      break;
  }
  // Locate the referenced value.
  Value cell;
  bool found = false;
  for (size_t i = 0; i < group_names.size(); ++i) {
    if (EqualsIgnoreCase(group_names[i], pred.column)) {
      cell = row.group_values[i];
      found = true;
      break;
    }
  }
  if (!found) {
    for (size_t i = 0; i < agg_names.size(); ++i) {
      if (EqualsIgnoreCase(agg_names[i], pred.column)) {
        cell = Value(row.aggregates[i].value);
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return false;
  }
  if (cell.is_string() != pred.literal.is_string()) {
    return false;
  }
  if (cell.is_string()) {
    const bool eq = cell.AsString() == pred.literal.AsString();
    return pred.op == CompareOp::kEq ? eq : pred.op == CompareOp::kNe && !eq;
  }
  const double lhs = cell.AsNumeric();
  const double rhs = pred.literal.AsNumeric();
  switch (pred.op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// Deterministic output order: lexicographic on group values.
bool GroupValueLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) {
      continue;
    }
    if (a[i].is_string() && b[i].is_string()) {
      return a[i].AsString() < b[i].AsString();
    }
    return a[i].AsNumeric() < b[i].AsNumeric();
  }
  return a.size() < b.size();
}

}  // namespace

double QueryResult::MaxRelativeError(double conf) const {
  double worst = 0.0;
  for (const auto& row : rows) {
    for (const auto& est : row.aggregates) {
      if (est.variance <= 0.0) {
        continue;
      }
      worst = std::max(worst, est.RelativeErrorAt(conf));
    }
  }
  return worst;
}

std::string QueryResult::ToString() const {
  std::string out;
  for (const auto& name : group_names) {
    out += name + "\t";
  }
  for (const auto& name : aggregate_names) {
    out += name + "\t";
  }
  out += "\n";
  for (const auto& row : rows) {
    for (const auto& v : row.group_values) {
      out += v.is_string() ? v.AsString() : v.ToString();
      out += "\t";
    }
    for (const auto& est : row.aggregates) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4g +/- %.3g", est.value, est.ErrorAt(confidence));
      out += buf;
      out += "\t";
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim) {
  if (fact.table == nullptr) {
    return Status::InvalidArgument("dataset has no table");
  }
  const Table& table = *fact.table;
  const Schema* dim_schema = dim != nullptr ? &dim->schema() : nullptr;
  BLINK_RETURN_IF_ERROR(ValidateQuery(stmt, table.schema(), dim_schema));

  // Resolve group-by columns and aggregates.
  std::vector<ColumnRef> group_cols;
  std::vector<std::string> group_names;
  for (const auto& g : stmt.group_by) {
    auto ref = ResolveColumn(g, table.schema(), dim_schema);
    if (!ref.ok()) {
      return ref.status();
    }
    group_cols.push_back(*ref);
    group_names.push_back(g);
  }
  std::vector<BoundAgg> aggs;
  std::vector<std::string> agg_names;
  for (const auto& item : stmt.items) {
    if (!item.is_aggregate) {
      continue;
    }
    BoundAgg bound;
    bound.agg = item.agg;
    if (!item.agg.count_star) {
      auto ref = ResolveColumn(item.agg.column, table.schema(), dim_schema);
      if (!ref.ok()) {
        return ref.status();
      }
      bound.arg = *ref;
    }
    aggs.push_back(bound);
    agg_names.push_back(SelectItemName(item));
  }

  // Compile the WHERE predicate.
  std::optional<CompiledPredicate> where;
  if (stmt.where.has_value()) {
    auto compiled = CompiledPredicate::Compile(*stmt.where, table, dim);
    if (!compiled.ok()) {
      return compiled.status();
    }
    where = std::move(compiled.value());
  }

  // Build the join hash table (dim key -> first dim row). Per §2.1 the
  // dimension side is an exact in-memory table (typically a foreign key
  // target, so keys are unique).
  std::unordered_map<int64_t, uint64_t> join_index;
  std::optional<size_t> join_fact_col;
  std::optional<size_t> join_dim_col;
  if (stmt.join.has_value()) {
    if (dim == nullptr) {
      return Status::InvalidArgument("join requested but no dimension table provided");
    }
    join_fact_col = table.schema().FindColumn(stmt.join->left_column);
    join_dim_col = dim->schema().FindColumn(stmt.join->right_column);
    join_index.reserve(dim->num_rows());
    const bool string_key =
        table.schema().column(*join_fact_col).type == DataType::kString;
    for (uint64_t r = 0; r < dim->num_rows(); ++r) {
      if (string_key) {
        // Dictionary codes differ between tables; key the index by the FACT
        // table's code for the dim row's string (absent => unjoinable).
        const int32_t fact_code =
            table.column(*join_fact_col).dict->Find(dim->GetString(*join_dim_col, r));
        if (fact_code >= 0) {
          join_index.emplace(fact_code, r);
        }
      } else {
        join_index.emplace(dim->CellKey(*join_dim_col, r), r);
      }
    }
  }

  // Scan.
  std::unordered_map<std::vector<int64_t>, GroupState, KeyHash> groups;
  std::vector<int64_t> key;
  const uint64_t n = fact.NumRows();
  ScanStats stats;
  stats.rows_scanned = n;
  stats.bytes_scanned = static_cast<double>(n) * table.EstimatedBytesPerRow();
  for (uint64_t row = 0; row < n; ++row) {
    uint64_t dim_row = 0;
    if (join_fact_col.has_value()) {
      const auto it = join_index.find(table.CellKey(*join_fact_col, row));
      if (it == join_index.end()) {
        continue;  // inner join: drop unmatched fact rows
      }
      dim_row = it->second;
    }
    if (where.has_value() && !where->Matches(row, dim_row)) {
      continue;
    }
    ++stats.rows_matched;

    key.clear();
    for (const auto& ref : group_cols) {
      key.push_back(ref.side == TableSide::kFact ? table.CellKey(ref.index, row)
                                                 : dim->CellKey(ref.index, dim_row));
    }
    auto [it, inserted] = groups.try_emplace(key);
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(aggs.size());
      group.group_values.reserve(group_cols.size());
      for (const auto& ref : group_cols) {
        group.group_values.push_back(ref.side == TableSide::kFact
                                         ? table.GetValue(ref.index, row)
                                         : dim->GetValue(ref.index, dim_row));
      }
    }

    const double weight = fact.RowWeight(row);
    const uint32_t stratum = fact.RowStratum(row);
    for (size_t a = 0; a < aggs.size(); ++a) {
      const BoundAgg& bound = aggs[a];
      double x = 1.0;
      if (bound.agg.func != AggFunc::kCount) {
        const Table& t = bound.arg.side == TableSide::kFact ? table : *dim;
        const uint64_t r = bound.arg.side == TableSide::kFact ? row : dim_row;
        x = t.GetNumeric(bound.arg.index, r);
      }
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        accum.values.emplace_back(x, weight);
      } else {
        StratumCell& cell = accum.cells[stratum];
        cell.matched += 1.0;
        const double v = bound.agg.func == AggFunc::kCount ? 1.0 : x;
        cell.sum += v;
        cell.sum_sq += v * v;
      }
    }
  }

  // Finalize.
  QueryResult result;
  result.group_names = std::move(group_names);
  result.aggregate_names = agg_names;
  result.stats = stats;
  if (stmt.bounds.kind == QueryBounds::Kind::kError ||
      stmt.report_error_columns) {
    result.confidence = stmt.bounds.confidence;
  }

  // SQL semantics: a global aggregate (no GROUP BY) always yields one row,
  // even when nothing matched.
  if (groups.empty() && group_cols.empty()) {
    GroupState empty_group;
    empty_group.aggs.resize(aggs.size());
    groups.emplace(std::vector<int64_t>{}, std::move(empty_group));
  }

  result.rows.reserve(groups.size());
  for (auto& [group_key, group] : groups) {
    (void)group_key;
    ResultRow row;
    row.group_values = std::move(group.group_values);
    row.aggregates.reserve(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      const BoundAgg& bound = aggs[a];
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        Estimate q = WeightedQuantile(std::move(accum.values), bound.agg.quantile_p);
        if (fact.is_exact()) {
          q.variance = 0.0;  // computed over the entire population
        }
        row.aggregates.push_back(q);
        continue;
      }
      std::vector<StratumSummary> strata;
      strata.reserve(accum.cells.size());
      for (const auto& [stratum_id, cell] : accum.cells) {
        const StratumCounts counts = fact.CountsFor(stratum_id);
        StratumSummary s;
        s.total_rows = counts.total_rows;
        s.sampled_rows = counts.sampled_rows;
        s.matched = cell.matched;
        s.sum = cell.sum;
        s.sum_sq = cell.sum_sq;
        strata.push_back(s);
      }
      switch (bound.agg.func) {
        case AggFunc::kCount:
          row.aggregates.push_back(StratifiedCount(strata));
          break;
        case AggFunc::kSum:
          row.aggregates.push_back(StratifiedSum(strata));
          break;
        case AggFunc::kAvg:
          row.aggregates.push_back(StratifiedAvg(strata));
          break;
        case AggFunc::kQuantile:
          break;  // handled above
      }
    }
    result.rows.push_back(std::move(row));
  }

  // HAVING filter on finished rows.
  if (stmt.having.has_value()) {
    std::vector<ResultRow> kept;
    kept.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (EvalHaving(*stmt.having, row, result.group_names, result.aggregate_names)) {
        kept.push_back(std::move(row));
      }
    }
    result.rows = std::move(kept);
  }

  std::sort(result.rows.begin(), result.rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return GroupValueLess(a.group_values, b.group_values);
            });
  return result;
}

}  // namespace blink
