// Morsel-driven scan decomposition.
//
// A Dataset's scan range [0, NumRows) is carved into fixed-size row blocks
// ("morsels"). Workers pull morsels from a shared counter, so scheduling is
// dynamic, but every morsel has a stable index: partial aggregates are merged
// in index order, which makes the parallel pipeline deterministic for any
// thread count or schedule.
//
// Carving additionally cuts at the multi-resolution sample prefix boundaries
// (§3.1 / §4.4): each logical resolution is then a whole number of blocks, so
// the §4.4 "don't re-read the probe's blocks" reuse is exact block
// arithmetic, never a partial block.
#ifndef BLINKDB_EXEC_MORSEL_H_
#define BLINKDB_EXEC_MORSEL_H_

#include <cstdint>
#include <vector>

namespace blink {

// Default morsel size in rows: large enough to amortize per-block setup,
// small enough that per-morsel state stays cache-resident.
inline constexpr uint32_t kDefaultMorselRows = 4096;

// One block of consecutive rows, [begin, end).
struct Morsel {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint32_t index = 0;  // position in the plan; fixes the merge order

  uint64_t rows() const { return end - begin; }
};

// The block decomposition of one scan.
struct MorselPlan {
  std::vector<Morsel> morsels;
  uint64_t total_rows = 0;
  uint32_t target_rows = kDefaultMorselRows;

  uint64_t num_blocks() const { return morsels.size(); }
};

// Carves [0, total_rows) into morsels of at most `target_rows` rows, cutting
// additionally at every row count in `boundaries` (ascending; typically the
// resolution sizes of a sample family). Boundaries outside (0, total_rows)
// are ignored.
MorselPlan CarveMorsels(uint64_t total_rows, uint32_t target_rows,
                        const std::vector<uint64_t>* boundaries = nullptr);

// Block count of the same carving, without materializing the plan. Because
// boundaries are cut points, counting over a prefix that is itself a
// boundary covers it exactly — what the block-granular latency/reuse
// accounting relies on.
uint64_t CountMorsels(uint64_t total_rows, uint32_t target_rows,
                      const std::vector<uint64_t>* boundaries = nullptr);

}  // namespace blink

#endif  // BLINKDB_EXEC_MORSEL_H_
