// Online incremental execution: stream morsel blocks through the aggregation
// pipeline in deterministic prefix order and stop the scan the moment the
// query's error bound is met (or a block budget runs out), returning the
// partial answer with its achieved error.
//
// Since the plan refactor this is the single-dataset façade over the unified
// plan driver (src/plan/query_plan.h): ExecuteQueryIncremental drives a
// 1-pipeline QueryPlan, and the same driver generalizes to the N-pipeline
// §4.1.2 union plans with joint error-driven stopping. The progress types
// below (StreamProgress, ProgressCallback) are shared by both.
//
// Why a block prefix is a valid sample: multi-resolution families lay out
// each stratum's rows in one fixed random permutation (smallest resolution
// first, §3.1 / Fig 4), so the rows of stratum h inside ANY row prefix are a
// prefix of that permutation — a simple random sample of the stratum. The
// executor tallies per-stratum consumed counts n_h(prefix) per block and
// re-finalizes the §4.3 estimators against those counts, so every batch's
// partial answer carries unbiased estimates with honest variances.
//
// Determinism: blocks are consumed batch-by-batch in block-index order, and
// partials merge in that same order, so a streamed scan with the never-stop
// rule is bit-identical to the one-shot executor (which is implemented as
// exactly that) for every thread count, morsel size, and batch size.
#ifndef BLINKDB_EXEC_INCREMENTAL_H_
#define BLINKDB_EXEC_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "src/exec/dataset.h"
#include "src/exec/executor.h"
#include "src/sql/ast.h"
#include "src/stats/stopping.h"
#include "src/util/status.h"

namespace blink {

// Progress snapshot delivered to the caller after every batch.
struct StreamProgress {
  uint64_t blocks_consumed = 0;
  uint64_t blocks_total = 0;
  uint64_t rows_consumed = 0;
  uint64_t rows_total = 0;
  // Storage bytes read over the consumed prefix (encoded bytes of the touched
  // columns on compressed tables) and the logical bytes they decoded to.
  // Equal on raw storage.
  double bytes_scanned = 0.0;
  double bytes_decoded = 0.0;
  // Worst error over the partial answer's groups/aggregates, at the stopping
  // policy's confidence.
  double achieved_error = 0.0;
  bool bound_met = false;    // the error target (if any) is met
  bool final_batch = false;  // no further callbacks will follow
  // Answer-cache outcome of the execution streaming these partials ("resume"
  // or "miss"; hits never stream). Empty when no cache is consulted — the
  // plan driver itself never sets it, the runtime stamps it.
  std::string cache;
};

// Invoked after every batch with the partial answer over the consumed prefix.
// The QueryResult reference is only valid during the call.
using ProgressCallback =
    std::function<void(const QueryResult& partial, const StreamProgress& progress)>;

struct StreamOptions {
  ExecutionOptions exec;
  // Blocks consumed between stopping-rule evaluations / progress callbacks.
  // 0 means the whole scan runs as one batch (the one-shot fast path when the
  // policy never stops and no callback is installed).
  uint32_t batch_blocks = 0;
  // Default-constructed policy never stops.
  StopPolicy policy;
  ProgressCallback progress;
  // Cooperative cancellation (see PlanOptions::cancel): checked at batch
  // boundaries; once true, the scan returns its consumed-prefix partial
  // answer with StreamResult::cancelled set.
  const std::atomic<bool>* cancel = nullptr;
};

struct StreamResult {
  QueryResult result;
  uint64_t blocks_consumed = 0;
  uint64_t blocks_total = 0;
  uint64_t rows_consumed = 0;
  bool stopped_early = false;  // returned before consuming every block
  bool bound_met = false;      // the error target was met at return
  bool cancelled = false;      // StreamOptions::cancel ended the scan
  // Worst error of `result` at the policy confidence (max over
  // groups/aggregates).
  double achieved_error = 0.0;
};

// Flattens every group's aggregates of `result` into one vector — the input
// MaxEstimateError and StopPolicy::Evaluate consume.
std::vector<Estimate> FlattenEstimates(const QueryResult& result);

// Streams `stmt` over `fact` in block-prefix order, evaluating
// `options.policy` after each batch. Early stopping applies only to sample
// datasets: a row prefix of an exact table is not a random sample, so for
// exact datasets the policy is ignored and the scan always completes
// (progress callbacks still fire). On stratified families, no stop fires
// before the smallest resolution's prefix boundary — the first row prefix
// guaranteed to hold rows of every stratum.
Result<StreamResult> ExecuteQueryIncremental(const SelectStatement& stmt,
                                             const Dataset& fact, const Table* dim,
                                             const StreamOptions& options);

}  // namespace blink

#endif  // BLINKDB_EXEC_INCREMENTAL_H_
