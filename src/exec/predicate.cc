#include "src/exec/predicate.h"

namespace blink {

Result<CompiledPredicate> CompiledPredicate::Compile(const Predicate& pred,
                                                     const Table& fact, const Table* dim) {
  CompiledPredicate compiled;
  compiled.fact_ = &fact;
  compiled.dim_ = dim;
  auto root = compiled.CompileNode(pred, fact, dim);
  if (!root.ok()) {
    return root.status();
  }
  return compiled;
}

Result<size_t> CompiledPredicate::CompileNode(const Predicate& pred, const Table& fact,
                                              const Table* dim) {
  // Reserve this node's slot first so the root lands at index 0.
  const size_t my_index = nodes_.size();
  nodes_.emplace_back();

  if (pred.kind != Predicate::Kind::kCompare) {
    nodes_[my_index].kind =
        pred.kind == Predicate::Kind::kAnd ? NodeKind::kAnd : NodeKind::kOr;
    std::vector<size_t> children;
    children.reserve(pred.children.size());
    for (const auto& child : pred.children) {
      auto idx = CompileNode(child, fact, dim);
      if (!idx.ok()) {
        return idx.status();
      }
      children.push_back(idx.value());
    }
    nodes_[my_index].children = std::move(children);
    return my_index;
  }

  auto ref = ResolveColumn(pred.column, fact.schema(), dim ? &dim->schema() : nullptr);
  if (!ref.ok()) {
    return ref.status();
  }
  Node& node = nodes_[my_index];
  node.side = ref->side;
  node.column = ref->index;
  node.op = pred.op;
  if (ref->type == DataType::kString) {
    if (!pred.literal.is_string()) {
      return Status::InvalidArgument("string column '" + pred.column +
                                     "' compared with non-string literal");
    }
    if (pred.op != CompareOp::kEq && pred.op != CompareOp::kNe) {
      return Status::InvalidArgument("string column '" + pred.column +
                                     "' only supports = and !=");
    }
    node.kind = NodeKind::kStringCompare;
    const Table& t = ref->side == TableSide::kFact ? fact : *dim;
    node.code_literal = t.column(ref->index).dict->Find(pred.literal.AsString());
  } else {
    if (pred.literal.is_string()) {
      return Status::InvalidArgument("numeric column '" + pred.column +
                                     "' compared with string literal");
    }
    node.kind = NodeKind::kNumericCompare;
    node.numeric_literal = pred.literal.AsNumeric();
  }
  return my_index;
}

bool CompiledPredicate::EvalNode(size_t node_idx, uint64_t fact_row, uint64_t dim_row) const {
  const Node& node = nodes_[node_idx];
  switch (node.kind) {
    case NodeKind::kAnd:
      for (size_t child : node.children) {
        if (!EvalNode(child, fact_row, dim_row)) {
          return false;
        }
      }
      return true;
    case NodeKind::kOr:
      for (size_t child : node.children) {
        if (EvalNode(child, fact_row, dim_row)) {
          return true;
        }
      }
      return false;
    case NodeKind::kNumericCompare: {
      const Table& t = node.side == TableSide::kFact ? *fact_ : *dim_;
      const uint64_t row = node.side == TableSide::kFact ? fact_row : dim_row;
      const double v = t.GetNumeric(node.column, row);
      switch (node.op) {
        case CompareOp::kEq:
          return v == node.numeric_literal;
        case CompareOp::kNe:
          return v != node.numeric_literal;
        case CompareOp::kLt:
          return v < node.numeric_literal;
        case CompareOp::kLe:
          return v <= node.numeric_literal;
        case CompareOp::kGt:
          return v > node.numeric_literal;
        case CompareOp::kGe:
          return v >= node.numeric_literal;
      }
      return false;
    }
    case NodeKind::kStringCompare: {
      const Table& t = node.side == TableSide::kFact ? *fact_ : *dim_;
      const uint64_t row = node.side == TableSide::kFact ? fact_row : dim_row;
      const int32_t code = t.GetStringCode(node.column, row);
      return node.op == CompareOp::kEq ? code == node.code_literal
                                       : code != node.code_literal;
    }
  }
  return false;
}

}  // namespace blink
