#include "src/exec/predicate.h"

#include <cstring>

namespace blink {
namespace {

// Compacts `sel` (and the parallel `dim_rows`) down to the positions where
// keep(i) is true, preserving order. Branchless: every element is written to
// the output cursor and the cursor advances by keep(i), so the loop has no
// data-dependent branch for the compiler to fight (the common pattern for
// auto-vectorized / branch-predictor-friendly selection compaction).
template <typename KeepFn>
void Compact(std::vector<uint32_t>& sel, std::vector<uint64_t>* dim_rows, KeepFn keep) {
  const size_t n = sel.size();
  size_t out = 0;
  if (dim_rows != nullptr) {
    uint32_t* s = sel.data();
    uint64_t* d = dim_rows->data();
    for (size_t i = 0; i < n; ++i) {
      s[out] = s[i];
      d[out] = d[i];
      out += keep(i) ? 1 : 0;
    }
    dim_rows->resize(out);
  } else {
    uint32_t* s = sel.data();
    for (size_t i = 0; i < n; ++i) {
      s[out] = s[i];
      out += keep(i) ? 1 : 0;
    }
  }
  sel.resize(out);
}

// Dispatches the comparison operator once per block, so the per-row loop is a
// tight load-compare-compact with no switches.
template <typename LoadFn>
void FilterCompare(CompareOp op, double literal, std::vector<uint32_t>& sel,
                   std::vector<uint64_t>* dim_rows, LoadFn load) {
  switch (op) {
    case CompareOp::kEq:
      Compact(sel, dim_rows, [&](size_t i) { return load(i) == literal; });
      break;
    case CompareOp::kNe:
      Compact(sel, dim_rows, [&](size_t i) { return load(i) != literal; });
      break;
    case CompareOp::kLt:
      Compact(sel, dim_rows, [&](size_t i) { return load(i) < literal; });
      break;
    case CompareOp::kLe:
      Compact(sel, dim_rows, [&](size_t i) { return load(i) <= literal; });
      break;
    case CompareOp::kGt:
      Compact(sel, dim_rows, [&](size_t i) { return load(i) > literal; });
      break;
    case CompareOp::kGe:
      Compact(sel, dim_rows, [&](size_t i) { return load(i) >= literal; });
      break;
  }
}

}  // namespace

Result<CompiledPredicate> CompiledPredicate::Compile(const Predicate& pred,
                                                     const Table& fact, const Table* dim) {
  CompiledPredicate compiled;
  compiled.fact_ = &fact;
  compiled.dim_ = dim;
  auto root = compiled.CompileNode(pred, fact, dim);
  if (!root.ok()) {
    return root.status();
  }
  compiled.max_or_depth_ = compiled.OrDepth(0);
  std::sort(compiled.fact_columns_.begin(), compiled.fact_columns_.end());
  compiled.fact_columns_.erase(
      std::unique(compiled.fact_columns_.begin(), compiled.fact_columns_.end()),
      compiled.fact_columns_.end());
  return compiled;
}

size_t CompiledPredicate::OrDepth(size_t node_idx) const {
  const Node& node = nodes_[node_idx];
  size_t child_max = 0;
  for (size_t child : node.children) {
    child_max = std::max(child_max, OrDepth(child));
  }
  return child_max + (node.kind == NodeKind::kOr ? 1 : 0);
}

Result<size_t> CompiledPredicate::CompileNode(const Predicate& pred, const Table& fact,
                                              const Table* dim) {
  // Reserve this node's slot first so the root lands at index 0.
  const size_t my_index = nodes_.size();
  nodes_.emplace_back();

  if (pred.kind != Predicate::Kind::kCompare) {
    nodes_[my_index].kind =
        pred.kind == Predicate::Kind::kAnd ? NodeKind::kAnd : NodeKind::kOr;
    std::vector<size_t> children;
    children.reserve(pred.children.size());
    for (const auto& child : pred.children) {
      auto idx = CompileNode(child, fact, dim);
      if (!idx.ok()) {
        return idx.status();
      }
      children.push_back(idx.value());
    }
    nodes_[my_index].children = std::move(children);
    return my_index;
  }

  auto ref = ResolveColumn(pred.column, fact.schema(), dim ? &dim->schema() : nullptr);
  if (!ref.ok()) {
    return ref.status();
  }
  Node& node = nodes_[my_index];
  node.side = ref->side;
  node.column = ref->index;
  node.op = pred.op;
  if (ref->side == TableSide::kFact) {
    fact_columns_.push_back(ref->index);
  }
  if (ref->type == DataType::kString) {
    if (!pred.literal.is_string()) {
      return Status::InvalidArgument("string column '" + pred.column +
                                     "' compared with non-string literal");
    }
    if (pred.op != CompareOp::kEq && pred.op != CompareOp::kNe) {
      return Status::InvalidArgument("string column '" + pred.column +
                                     "' only supports = and !=");
    }
    node.kind = NodeKind::kStringCompare;
    const Table& t = ref->side == TableSide::kFact ? fact : *dim;
    node.code_literal = t.column(ref->index).dict->Find(pred.literal.AsString());
  } else {
    if (pred.literal.is_string()) {
      return Status::InvalidArgument("numeric column '" + pred.column +
                                     "' compared with string literal");
    }
    node.kind = NodeKind::kNumericCompare;
    node.numeric_literal = pred.literal.AsNumeric();
  }
  return my_index;
}

void CompiledPredicate::FilterNode(size_t node_idx, const ColumnSpan* fact_spans,
                                   std::vector<uint32_t>& sel,
                                   std::vector<uint64_t>* dim_rows,
                                   PredicateScratch& scratch, size_t depth) const {
  const Node& node = nodes_[node_idx];
  switch (node.kind) {
    case NodeKind::kAnd:
      for (size_t child : node.children) {
        if (sel.empty()) {
          return;
        }
        FilterNode(child, fact_spans, sel, dim_rows, scratch, depth);
      }
      return;
    case NodeKind::kOr: {
      if (sel.empty()) {
        return;
      }
      // Union of the children's survivors. Each child filters a copy of the
      // candidate selection; survivors (an ordered subsequence) are marked
      // and the union compacted once at the end. Buffers come from this OR
      // level's scratch slot (nested ORs use deeper slots), so steady-state
      // evaluation allocates nothing.
      PredicateScratch::Level& level = scratch.levels[depth];
      level.keep.assign(sel.size(), 0);
      for (size_t child : node.children) {
        level.sel.assign(sel.begin(), sel.end());
        std::vector<uint64_t>* ds = nullptr;
        if (dim_rows != nullptr) {
          level.dim_rows.assign(dim_rows->begin(), dim_rows->end());
          ds = &level.dim_rows;
        }
        FilterNode(child, fact_spans, level.sel, ds, scratch, depth + 1);
        size_t pos = 0;
        for (uint32_t off : level.sel) {
          while (sel[pos] != off) {
            ++pos;
          }
          level.keep[pos++] = 1;
        }
      }
      Compact(sel, dim_rows, [&](size_t i) { return level.keep[i] != 0; });
      return;
    }
    case NodeKind::kNumericCompare:
    case NodeKind::kStringCompare:
      FilterLeaf(node, fact_spans, sel, dim_rows, scratch);
      return;
  }
}

void CompiledPredicate::FilterLeaf(const Node& node, const ColumnSpan* fact_spans,
                                   std::vector<uint32_t>& sel,
                                   std::vector<uint64_t>* dim_rows,
                                   PredicateScratch& scratch) const {
  // Fact-side reads go through the caller's spans (raw or freshly decoded);
  // dim-side reads stay on the resident dimension table, addressed by the
  // join-resolved absolute rows.
  const bool fact_side = node.side == TableSide::kFact;
  if (fact_side &&
      fact_spans[node.column].encoding != SpanEncoding::kDecoded) {
    FilterEncodedLeaf(node, fact_spans[node.column], sel, dim_rows, scratch);
    return;
  }
  if (node.kind == NodeKind::kStringCompare) {
    const int32_t lit = node.code_literal;
    if (lit < 0) {
      // Literal absent from the table's dictionary: no stored code can equal
      // it, so the block resolves without reading a row (kEq keeps nothing,
      // kNe keeps everything).
      if (node.op == CompareOp::kEq) {
        sel.clear();
        if (dim_rows != nullptr) {
          dim_rows->clear();
        }
      }
      return;
    }
    if (fact_side) {
      const int32_t* data = fact_spans[node.column].codes;
      if (node.op == CompareOp::kEq) {
        Compact(sel, dim_rows, [&](size_t i) { return data[sel[i]] == lit; });
      } else {
        Compact(sel, dim_rows, [&](size_t i) { return data[sel[i]] != lit; });
      }
    } else {
      const int32_t* codes = dim_->CodeData(node.column);
      if (node.op == CompareOp::kEq) {
        Compact(sel, dim_rows, [&](size_t i) { return codes[(*dim_rows)[i]] == lit; });
      } else {
        Compact(sel, dim_rows, [&](size_t i) { return codes[(*dim_rows)[i]] != lit; });
      }
    }
    return;
  }
  // Numeric leaf: same semantics as the scalar path (values widened to
  // double, compared against the double literal).
  const Table& t = fact_side ? *fact_ : *dim_;
  const Column& col = t.column(node.column);
  if (col.type == DataType::kInt64) {
    if (fact_side) {
      const int64_t* data = fact_spans[node.column].i64;
      FilterCompare(node.op, node.numeric_literal, sel, dim_rows,
                    [&](size_t i) { return static_cast<double>(data[sel[i]]); });
    } else {
      const int64_t* raw = t.IntData(node.column);
      FilterCompare(node.op, node.numeric_literal, sel, dim_rows,
                    [&](size_t i) { return static_cast<double>(raw[(*dim_rows)[i]]); });
    }
  } else {
    if (fact_side) {
      const double* data = fact_spans[node.column].f64;
      FilterCompare(node.op, node.numeric_literal, sel, dim_rows,
                    [&](size_t i) { return data[sel[i]]; });
    } else {
      const double* raw = t.DoubleData(node.column);
      FilterCompare(node.op, node.numeric_literal, sel, dim_rows,
                    [&](size_t i) { return raw[(*dim_rows)[i]]; });
    }
  }
}

bool CompiledPredicate::LaneMatches(const Node& node, DataType type, uint64_t lane) {
  if (node.kind == NodeKind::kStringCompare) {
    // String lanes are the column's global dictionary codes (dict blocks add
    // a per-block index layer on top, but the lanes themselves are codes), so
    // the translation is a straight code comparison. code_literal == -1
    // (absent literal) matches no lane, which empties or preserves the whole
    // block below.
    const int32_t code = static_cast<int32_t>(lane);
    return node.op == CompareOp::kEq ? code == node.code_literal
                                     : code != node.code_literal;
  }
  // Numeric lanes carry the stored bits: int64 values or double bit patterns.
  // Widen exactly like the decoded path so keep decisions are bit-identical.
  double v;
  if (type == DataType::kInt64) {
    v = static_cast<double>(static_cast<int64_t>(lane));
  } else {
    std::memcpy(&v, &lane, sizeof(v));
  }
  switch (node.op) {
    case CompareOp::kEq:
      return v == node.numeric_literal;
    case CompareOp::kNe:
      return v != node.numeric_literal;
    case CompareOp::kLt:
      return v < node.numeric_literal;
    case CompareOp::kLe:
      return v <= node.numeric_literal;
    case CompareOp::kGt:
      return v > node.numeric_literal;
    case CompareOp::kGe:
      return v >= node.numeric_literal;
  }
  return false;
}

void CompiledPredicate::FilterEncodedLeaf(const Node& node, const ColumnSpan& span,
                                          std::vector<uint32_t>& sel,
                                          std::vector<uint64_t>* dim_rows,
                                          PredicateScratch& scratch) const {
  const DataType type = fact_->schema().column(node.column).type;
  // Translate the literal once per block: one keep flag per dictionary entry
  // (or per run). A block holds at most 2^16 distinct lanes, so this pass is
  // tiny next to the row loop it replaces.
  const bool dict = span.encoding == SpanEncoding::kDictIndex;
  const size_t lanes = dict ? span.dict_size : span.num_runs;
  const uint64_t* values = dict ? span.dict : span.run_values;
  std::vector<uint8_t>& match = scratch.lane_match;
  match.resize(lanes);
  size_t matched = 0;
  for (size_t e = 0; e < lanes; ++e) {
    const bool m = LaneMatches(node, type, values[e]);
    match[e] = m ? 1 : 0;
    matched += m ? 1 : 0;
  }
  // All-or-nothing translations short-circuit the block without touching a
  // single index: constant blocks always land here, and so does the absent
  // string literal (code_literal == -1 matches no lane under kEq and every
  // lane under kNe).
  if (matched == lanes) {
    return;
  }
  if (matched == 0) {
    sel.clear();
    if (dim_rows != nullptr) {
      dim_rows->clear();
    }
    return;
  }
  const uint8_t* bits = match.data();
  if (dict) {
    // Packed-index kernel: keep(i) is a 1- or 2-byte index load plus a flag
    // lookup — no value ever materializes.
    const uint8_t* idx = span.dict_idx;
    if (span.dict_width == 1) {
      Compact(sel, dim_rows, [&](size_t i) { return bits[idx[sel[i]]] != 0; });
    } else {
      Compact(sel, dim_rows, [&](size_t i) {
        const size_t o = static_cast<size_t>(sel[i]) * 2;
        return bits[(static_cast<uint32_t>(idx[o]) << 8) | idx[o + 1]] != 0;
      });
    }
    return;
  }
  // Run kernel: `sel` ascends, so a single forward cursor resolves each
  // offset's covering run; keep(i) is one flag lookup per row plus one
  // cursor step per run boundary.
  const uint32_t* ends = span.run_ends;
  size_t run = 0;
  Compact(sel, dim_rows, [&](size_t i) {
    const uint32_t off = span.rle_base + sel[i];
    while (off >= ends[run]) {
      ++run;
    }
    return bits[run] != 0;
  });
}

bool CompiledPredicate::EvalNode(size_t node_idx, uint64_t fact_row, uint64_t dim_row) const {
  const Node& node = nodes_[node_idx];
  switch (node.kind) {
    case NodeKind::kAnd:
      for (size_t child : node.children) {
        if (!EvalNode(child, fact_row, dim_row)) {
          return false;
        }
      }
      return true;
    case NodeKind::kOr:
      for (size_t child : node.children) {
        if (EvalNode(child, fact_row, dim_row)) {
          return true;
        }
      }
      return false;
    case NodeKind::kNumericCompare: {
      const Table& t = node.side == TableSide::kFact ? *fact_ : *dim_;
      const uint64_t row = node.side == TableSide::kFact ? fact_row : dim_row;
      const double v = t.GetNumeric(node.column, row);
      switch (node.op) {
        case CompareOp::kEq:
          return v == node.numeric_literal;
        case CompareOp::kNe:
          return v != node.numeric_literal;
        case CompareOp::kLt:
          return v < node.numeric_literal;
        case CompareOp::kLe:
          return v <= node.numeric_literal;
        case CompareOp::kGt:
          return v > node.numeric_literal;
        case CompareOp::kGe:
          return v >= node.numeric_literal;
      }
      return false;
    }
    case NodeKind::kStringCompare: {
      const Table& t = node.side == TableSide::kFact ? *fact_ : *dim_;
      const uint64_t row = node.side == TableSide::kFact ? fact_row : dim_row;
      const int32_t code = t.GetStringCode(node.column, row);
      return node.op == CompareOp::kEq ? code == node.code_literal
                                       : code != node.code_literal;
    }
  }
  return false;
}

}  // namespace blink
