// The aggregation executor: scans a Dataset (exact table or sample), applies
// the WHERE predicate and optional equi-join, groups rows, and produces
// unbiased estimates with closed-form error bounds for every aggregate
// (§4.3 of the paper; Table 2 estimators).
//
// Execution is morsel-driven and vectorized: the scan range is carved into
// blocks aligned to the sample-prefix boundaries (src/exec/morsel.h), each
// block is filtered through selection-vector predicate evaluation, and
// per-block partial accumulators (stratum cells) are merged in block-index
// order. The merge order makes results bit-identical across thread counts
// and schedules; a row-at-a-time reference path is kept for differential
// testing.
//
// ExecuteQuery is implemented as a streamed scan with a never-stop rule: the
// online incremental executor (src/exec/incremental.h) is the single
// implementation, and bounded queries use it directly to stop the scan as
// soon as the error bound is met.
#ifndef BLINKDB_EXEC_EXECUTOR_H_
#define BLINKDB_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/exec/dataset.h"
#include "src/exec/morsel.h"
#include "src/sql/ast.h"
#include "src/stats/estimators.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace blink {

class ThreadPool;

// One output row: the group key values plus one estimate per aggregate item.
struct ResultRow {
  std::vector<Value> group_values;
  std::vector<Estimate> aggregates;
};

// Scan-volume accounting, consumed by the cluster latency model. Volume is
// tracked both in rows and in blocks: the latency model and the §4.4
// intermediate-reuse logic charge whole blocks.
struct ScanStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t blocks_scanned = 0;  // morsels in the scan decomposition
  uint32_t block_rows = 0;      // target morsel size the scan used
  double bytes_scanned = 0.0;
};

// A complete query answer.
struct QueryResult {
  std::vector<std::string> group_names;
  std::vector<std::string> aggregate_names;
  std::vector<ResultRow> rows;
  ScanStats stats;
  double confidence = 0.95;  // confidence used when rendering error columns

  // Worst-case relative error at `confidence` across all rows/aggregates
  // (the metric Figures 7-8 of the paper plot). Zero-valued aggregates have
  // no meaningful relative error and are excluded from the max; 0 for exact
  // answers.
  double MaxRelativeError(double conf) const;
  // Pretty-printed table with +/- error annotations.
  std::string ToString() const;
};

// Scan-engine knobs for one execution.
struct ExecutionOptions {
  // Worker threads for the morsel fan-out. 1 processes blocks inline (still
  // vectorized); results are identical for every value.
  size_t num_threads = 1;
  // Target morsel size in rows; carving additionally cuts at sample-prefix
  // boundaries.
  uint32_t morsel_rows = kDefaultMorselRows;
  // Pool to run workers on when num_threads > 1. Null spawns transient
  // threads. Must not be the pool of an enclosing ParallelFor/Wait (the
  // executor waits for its workers).
  ThreadPool* pool = nullptr;
  // Scan compressed block storage (src/storage/encoded_table.h) when the
  // fact table carries it; false forces raw column scans. Answers are
  // bit-identical either way — this is purely a storage-path switch.
  bool compressed_scan = true;
  // On compressed scans, serve filter-only columns as encoded views (dict
  // indices / RLE runs) that the predicate evaluates without decoding; false
  // forces the decode-into-scratch path for them. Like compressed_scan this
  // is a pure storage-path switch — answers and block traces are
  // bit-identical either way — kept as a differential-test arm.
  bool filter_encoded_views = true;
};

// Executes `stmt` against `fact` (optionally joining `dim`, which must be an
// exact in-memory table per §2.1) on the morsel-driven vectorized engine.
// Both conjunctive and disjunctive WHERE clauses are supported here.
Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim, const ExecutionOptions& options);
Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim = nullptr);

// Row-at-a-time reference implementation (the original serial path). Kept for
// differential tests and the scan-throughput benchmark baseline; agrees with
// the morsel engine up to floating-point summation order.
Result<QueryResult> ExecuteQueryScalar(const SelectStatement& stmt, const Dataset& fact,
                                       const Table* dim = nullptr);

}  // namespace blink

#endif  // BLINKDB_EXEC_EXECUTOR_H_
