// The aggregation executor: scans a Dataset (exact table or sample), applies
// the WHERE predicate and optional equi-join, groups rows, and produces
// unbiased estimates with closed-form error bounds for every aggregate
// (§4.3 of the paper; Table 2 estimators).
#ifndef BLINKDB_EXEC_EXECUTOR_H_
#define BLINKDB_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/exec/dataset.h"
#include "src/sql/ast.h"
#include "src/stats/estimators.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace blink {

// One output row: the group key values plus one estimate per aggregate item.
struct ResultRow {
  std::vector<Value> group_values;
  std::vector<Estimate> aggregates;
};

// Scan-volume accounting, consumed by the cluster latency model.
struct ScanStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  double bytes_scanned = 0.0;
};

// A complete query answer.
struct QueryResult {
  std::vector<std::string> group_names;
  std::vector<std::string> aggregate_names;
  std::vector<ResultRow> rows;
  ScanStats stats;
  double confidence = 0.95;  // confidence used when rendering error columns

  // Worst-case relative error at `confidence` across all rows/aggregates
  // (the metric Figures 7-8 of the paper plot). Infinite if any aggregate
  // has value 0 with nonzero variance; 0 for exact answers.
  double MaxRelativeError(double conf) const;
  // Pretty-printed table with +/- error annotations.
  std::string ToString() const;
};

// Executes `stmt` against `fact` (optionally joining `dim`, which must be an
// exact in-memory table per §2.1). The statement must not contain
// disjunctive-only constructs the runtime was supposed to rewrite; both
// conjunctive and disjunctive WHERE clauses are supported here.
Result<QueryResult> ExecuteQuery(const SelectStatement& stmt, const Dataset& fact,
                                 const Table* dim = nullptr);

}  // namespace blink

#endif  // BLINKDB_EXEC_EXECUTOR_H_
