// Internal scan→filter→join→aggregate pipeline shared by the one-shot
// executor (src/exec/executor.cc), the row-at-a-time scalar reference, and
// the online incremental executor (src/exec/incremental.cc). Everything here
// operates on per-block sufficient statistics — per-(group, aggregate,
// stratum) cells of (matched, Σx, Σx²) — which add over any partition of the
// scan, so partials can be folded batch-by-batch without touching the §4.3
// estimator math.
//
// Not part of the public executor API: include only from src/exec/ code and
// tests that exercise pipeline internals.
#ifndef BLINKDB_EXEC_AGGREGATION_H_
#define BLINKDB_EXEC_AGGREGATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/exec/dataset.h"
#include "src/exec/executor.h"
#include "src/exec/morsel.h"
#include "src/exec/predicate.h"
#include "src/sql/analyzer.h"
#include "src/sql/ast.h"
#include "src/storage/encoded_table.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace blink {
namespace exec_internal {

// Per-(group, aggregate, stratum) running sums.
struct StratumCell {
  double matched = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

// Per-(group, aggregate) accumulator. Cells are indexed by stratum id, which
// fixes a canonical stratum order for finalization: both the scalar and the
// morsel path sum strata ascending by id. Stratum 0 (the only stratum for
// exact tables and uniform samples) lives inline so the common case costs no
// allocation per (morsel, group, aggregate).
struct AggAccum {
  // For COUNT/SUM/AVG: per-stratum cells; an untouched cell has matched == 0.
  StratumCell cell0;                // stratum 0
  std::vector<StratumCell> higher;  // stratum s >= 1 at higher[s - 1]
  // For QUANTILE: (value, fact row) reservoir (unbounded at our scales). The
  // row index — not the weight — is recorded so finalization can weight each
  // entry by the counts of the scan that actually ran: the full dataset for a
  // complete scan, the consumed prefix for an early-stopped one.
  std::vector<std::pair<double, uint64_t>> values;

  StratumCell& CellFor(uint32_t stratum) {
    if (stratum == 0) {
      return cell0;
    }
    if (stratum > higher.size()) {
      higher.resize(stratum);
    }
    return higher[stratum - 1];
  }
  uint32_t num_strata() const { return static_cast<uint32_t>(higher.size()) + 1; }
  const StratumCell& cell(uint32_t stratum) const {
    return stratum == 0 ? cell0 : higher[stratum - 1];
  }
};

struct GroupState {
  // Fact (and dim) row that first produced this group. Group values are
  // materialized from it at finalize time, so per-morsel partials never copy
  // Values around.
  uint64_t first_row = 0;
  uint64_t first_dim_row = 0;
  std::vector<AggAccum> aggs;
};

using GroupMap = std::unordered_map<std::vector<int64_t>, GroupState, KeyHash>;

// Resolved aggregate argument.
struct BoundAgg {
  AggExpr agg;
  ColumnRef arg;  // unused when count_star
};

// Everything resolved once per query, shared by the scalar and morsel paths.
struct BoundQuery {
  const Table* table = nullptr;
  const Table* dim = nullptr;
  // Compressed block storage of the fact table, or null to scan raw columns.
  // Set by BindQuery when the table carries a current encoding; callers may
  // null it to force the raw path (ExecutionOptions::compressed_scan=false).
  // Either way the morsel path reads ColumnSpans, so answers are bit-identical.
  const EncodedTable* encoded = nullptr;
  // Fact columns the block path touches (predicate leaves, group columns,
  // aggregate arguments, join key), sorted unique — the columns ProcessMorsel
  // prepares spans for, and the columns charged to bytes_scanned/decoded.
  std::vector<size_t> fact_cols;
  // Parallel to fact_cols: nonzero when the scan reads the column ONLY
  // through the predicate (never gathers it for grouping, aggregation, or
  // the join key). Such columns may be served as encoded views
  // (SpanEncoding::kDictIndex / kRleRuns) instead of decoded rows.
  std::vector<uint8_t> fact_col_filter_only;
  // Master switch for those views. ScanPipeline clears it when
  // ExecutionOptions::filter_encoded_views is off (the forced-decode
  // differential arm); answers are bit-identical either way.
  bool use_encoded_views = true;
  std::vector<ColumnRef> group_cols;
  std::vector<std::string> group_names;
  std::vector<BoundAgg> aggs;
  std::vector<std::string> agg_names;
  std::optional<CompiledPredicate> where;
  // Equi-join: dim key (as the fact table's cell key) -> dim row.
  std::unordered_map<int64_t, uint64_t> join_index;
  std::optional<size_t> join_fact_col;
};

Result<BoundQuery> BindQuery(const SelectStatement& stmt, const Dataset& fact,
                             const Table* dim);

// Partial aggregation state of one morsel. Partials are merged in morsel
// index order, which fixes the floating-point summation order independent of
// the thread count or schedule.
struct MorselPartial {
  GroupMap groups;
  uint64_t rows_matched = 0;
  // Logical bytes this block's scan materialized: rows × width summed over
  // the touched columns that were served decoded (raw spans included).
  // Columns served as encoded views charge nothing — the whole point of the
  // filter-only fast path is that their rows never exist.
  double bytes_decoded = 0.0;
  // Rows of the block per stratum — all scanned rows, not just matches —
  // filled only when the caller asked ProcessMorsel to count them. Folded
  // into the running prefix counts n_h(prefix) that make a stopped block
  // prefix a valid stratified sample.
  std::vector<double> stratum_scanned;
};

// Reusable per-worker buffers: selection vector, join side-arrays, per-column
// gather targets, and the compressed-block decode state. All of it persists
// across the worker's morsels, so the steady-state scan allocates nothing.
struct WorkerScratch {
  std::vector<uint32_t> sel;
  std::vector<uint64_t> dim_rows;
  std::vector<int64_t> join_keys;
  std::vector<int64_t> key;
  std::vector<std::vector<int64_t>> group_keys;  // one buffer per group column
  std::vector<std::vector<double>> agg_values;   // one buffer per aggregate
  PredicateScratch predicate;                    // OR-union buffers
  std::vector<ColumnSpan> spans;  // per fact column, rebased every morsel
  DecodeScratch decode;           // compressed-block scratch buffers
  size_t group_hint = 0;  // groups seen in the previous morsel (reserve hint)
};

// Scans one block into `out`. When `count_scanned` is set, also tallies the
// block's rows per stratum into out.stratum_scanned.
void ProcessMorsel(const BoundQuery& bq, const Dataset& fact, const Morsel& m,
                   WorkerScratch& s, MorselPartial& out, bool count_scanned);

// Merges morsel partials into `groups` strictly in morsel index order. When
// `scanned_per_stratum` is non-null, per-block scanned-row tallies accumulate
// into it (resized as needed).
void MergePartials(std::vector<MorselPartial>& partials, size_t num_aggs,
                   GroupMap& groups, ScanStats& stats,
                   std::vector<double>* scanned_per_stratum);

// Turns finished accumulators into the result: estimates per group (strata
// summed ascending by id), HAVING, and the deterministic group sort. When
// `prefix_sampled_rows` is non-null the scan covered only a prefix of the
// dataset; per-stratum sampled-row counts (and quantile weights) then come
// from the prefix tallies instead of the dataset's full-scan counts, which is
// what keeps the §4.3 estimators unbiased on an early-stopped prefix.
// Read-only: the incremental executor finalizes per-batch snapshots off the
// same running accumulators it keeps folding into.
Result<QueryResult> Finalize(const SelectStatement& stmt, const Dataset& fact,
                             const BoundQuery& bq, const GroupMap& groups,
                             ScanStats stats,
                             const std::vector<double>* prefix_sampled_rows);

}  // namespace exec_internal
}  // namespace blink

#endif  // BLINKDB_EXEC_AGGREGATION_H_
