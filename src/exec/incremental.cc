#include "src/exec/incremental.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "src/exec/aggregation.h"
#include "src/util/thread_pool.h"

namespace blink {
namespace {

using exec_internal::BindQuery;
using exec_internal::BoundQuery;
using exec_internal::Finalize;
using exec_internal::GroupMap;
using exec_internal::MergePartials;
using exec_internal::MorselPartial;
using exec_internal::ProcessMorsel;
using exec_internal::WorkerScratch;

}  // namespace

std::vector<Estimate> FlattenEstimates(const QueryResult& result) {
  std::vector<Estimate> flat;
  for (const auto& row : result.rows) {
    flat.insert(flat.end(), row.aggregates.begin(), row.aggregates.end());
  }
  return flat;
}

Result<StreamResult> ExecuteQueryIncremental(const SelectStatement& stmt,
                                             const Dataset& fact, const Table* dim,
                                             const StreamOptions& options) {
  auto bound = BindQuery(stmt, fact, dim);
  if (!bound.ok()) {
    return bound.status();
  }
  const BoundQuery& bq = bound.value();
  const uint64_t n = fact.NumRows();
  const MorselPlan plan = fact.PlanMorsels(options.exec.morsel_rows);
  const uint64_t total_blocks = plan.num_blocks();
  const double bytes_per_row = bq.table->EstimatedBytesPerRow();

  StopPolicy policy = options.policy;
  if (fact.is_exact()) {
    // A row prefix of an exact table is not a random sample: estimates over
    // it would be biased by the table's physical row order. Never stop early.
    policy.target_error = 0.0;
    policy.max_blocks = 0;
  }
  // Partial answers must be materialized between batches for the error rule
  // and for progress callbacks; a bare block budget only needs the final
  // prefix finalization, so it skips the per-batch snapshots entirely.
  const bool needs_partials = policy.target_error > 0.0 || options.progress != nullptr;
  const bool may_stop_early = policy.target_error > 0.0 || policy.max_blocks > 0;
  // Prefix stratum counts are only meaningful (and only needed) on samples.
  const bool track_prefix = may_stop_early && !fact.is_exact();

  StreamResult out;
  out.blocks_total = total_blocks;

  if (total_blocks == 0) {
    ScanStats stats;
    stats.block_rows = plan.target_rows;
    auto result = Finalize(stmt, fact, bq, GroupMap{}, stats, nullptr);
    if (!result.ok()) {
      return result.status();
    }
    out.result = std::move(result.value());
    if (options.progress) {
      StreamProgress progress;
      progress.final_batch = true;
      options.progress(out.result, progress);
    }
    return out;
  }

  // No error stop may fire before the smallest resolution's prefix boundary:
  // it is the first row prefix guaranteed to contain rows of every stratum,
  // so stopping inside it could silently drop whole strata from the answer.
  uint64_t min_stop_rows = 0;
  if (fact.prefix_boundaries != nullptr) {
    for (uint64_t boundary : *fact.prefix_boundaries) {
      if (boundary > 0 && boundary <= n) {
        min_stop_rows = boundary;
        break;  // boundaries ascend: the first in range is the smallest
      }
    }
  }
  if (policy.max_blocks > 0 && min_stop_rows > 0) {
    // The guard applies to budget stops too: the smallest resolution is the
    // minimum statistically meaningful answer (the ELP never plans below it
    // either), so a block budget smaller than it floors there rather than
    // silently dropping whole strata.
    policy.max_blocks = std::max(
        policy.max_blocks,
        CountMorsels(min_stop_rows, plan.target_rows, fact.prefix_boundaries));
  }

  const size_t workers = std::max<size_t>(
      1, std::min<size_t>(options.exec.num_threads, static_cast<size_t>(total_blocks)));
  // Batch size: the stopping-rule evaluation cadence. Without evaluation the
  // whole scan is one batch — exactly the one-shot executor.
  uint64_t batch = total_blocks;
  if (needs_partials && options.batch_blocks > 0) {
    batch = std::max<uint64_t>(options.batch_blocks, workers);
  }

  GroupMap groups;
  ScanStats stats;
  stats.block_rows = plan.target_rows;
  std::vector<double> prefix_scanned;  // consumed rows per stratum
  std::vector<WorkerScratch> scratches(workers);

  uint64_t consumed = 0;
  for (;;) {
    uint64_t end = std::min(consumed + batch, total_blocks);
    if (policy.max_blocks > 0) {
      end = std::min(end, std::max<uint64_t>(policy.max_blocks, 1));
    }
    const size_t count = static_cast<size_t>(end - consumed);
    std::vector<MorselPartial> partials(count);
    const size_t batch_workers = std::min(workers, count);
    if (batch_workers <= 1) {
      for (size_t i = 0; i < count; ++i) {
        ProcessMorsel(bq, fact, plan.morsels[consumed + i], scratches[0], partials[i],
                      track_prefix);
      }
    } else {
      // Morsel-driven scheduling: workers pull block indices from a shared
      // counter; any assignment of blocks to workers yields the same partials.
      std::atomic<size_t> next{0};
      std::atomic<size_t> slot{0};
      auto work = [&] {
        WorkerScratch& scratch = scratches[slot.fetch_add(1)];
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= count) {
            return;
          }
          ProcessMorsel(bq, fact, plan.morsels[consumed + i], scratch, partials[i],
                        track_prefix);
        }
      };
      if (options.exec.pool != nullptr) {
        for (size_t w = 0; w < batch_workers; ++w) {
          options.exec.pool->Submit(work);
        }
        options.exec.pool->Wait();
      } else {
        std::vector<std::thread> threads;
        threads.reserve(batch_workers - 1);
        for (size_t w = 0; w + 1 < batch_workers; ++w) {
          threads.emplace_back(work);
        }
        work();
        for (auto& t : threads) {
          t.join();
        }
      }
    }
    MergePartials(partials, bq.aggs.size(), groups, stats,
                  track_prefix ? &prefix_scanned : nullptr);
    consumed = end;
    const uint64_t rows_consumed = plan.morsels[consumed - 1].end;
    const bool complete = consumed == total_blocks;
    const bool budget_exhausted =
        !complete && policy.max_blocks > 0 && consumed >= policy.max_blocks;

    if (!needs_partials) {
      if (!complete && !budget_exhausted) {
        continue;
      }
      // No per-batch snapshots: a single finalize. Complete scans use the
      // dataset's full counts — bit-identical to the pre-streaming executor;
      // a budget stop finalizes against the consumed prefix's tallies.
      stats.rows_scanned = rows_consumed;
      stats.blocks_scanned = consumed;
      stats.bytes_scanned = static_cast<double>(rows_consumed) * bytes_per_row;
      auto result = Finalize(stmt, fact, bq, groups, stats,
                             complete || !track_prefix ? nullptr : &prefix_scanned);
      if (!result.ok()) {
        return result.status();
      }
      out.result = std::move(result.value());
      out.blocks_consumed = consumed;
      out.rows_consumed = rows_consumed;
      out.stopped_early = !complete;
      if (may_stop_early) {
        out.achieved_error = MaxEstimateError(FlattenEstimates(out.result),
                                              policy.relative, policy.confidence);
      }
      return out;
    }

    // Materialize the partial answer over the consumed prefix (Finalize is
    // read-only, so snapshots share the running accumulators). A complete
    // scan finalizes against the dataset's own counts — the prefix tallies
    // equal them, but using the dataset's keeps the one-shot equivalence
    // exact by construction.
    ScanStats snapshot_stats = stats;
    snapshot_stats.rows_scanned = rows_consumed;
    snapshot_stats.blocks_scanned = consumed;
    snapshot_stats.bytes_scanned = static_cast<double>(rows_consumed) * bytes_per_row;
    auto snapshot =
        Finalize(stmt, fact, bq, groups, snapshot_stats,
                 complete || !track_prefix ? nullptr : &prefix_scanned);
    if (!snapshot.ok()) {
      return snapshot.status();
    }
    QueryResult partial = std::move(snapshot.value());

    const StopPolicy::Decision decision = policy.Evaluate(
        FlattenEstimates(partial), consumed, static_cast<double>(stats.rows_matched));
    // The sample-prefix guard: never stop inside the smallest resolution.
    const bool error_stop = decision.stop && rows_consumed >= min_stop_rows;
    const bool returning = complete || budget_exhausted || error_stop;

    if (options.progress) {
      StreamProgress progress;
      progress.blocks_consumed = consumed;
      progress.blocks_total = total_blocks;
      progress.rows_consumed = rows_consumed;
      progress.rows_total = n;
      progress.achieved_error = decision.achieved_error;
      progress.bound_met = decision.bound_met;
      progress.final_batch = returning;
      options.progress(partial, progress);
    }
    if (returning) {
      out.result = std::move(partial);
      out.blocks_consumed = consumed;
      out.rows_consumed = rows_consumed;
      out.stopped_early = !complete;
      out.bound_met = decision.bound_met;
      out.achieved_error = decision.achieved_error;
      return out;
    }
  }
}

}  // namespace blink
