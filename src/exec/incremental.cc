#include "src/exec/incremental.h"

#include <utility>

#include "src/plan/query_plan.h"

namespace blink {

std::vector<Estimate> FlattenEstimates(const QueryResult& result) {
  std::vector<Estimate> flat;
  for (const auto& row : result.rows) {
    flat.insert(flat.end(), row.aggregates.begin(), row.aggregates.end());
  }
  return flat;
}

// A single-dataset streamed scan is the 1-pipeline special case of the
// unified plan driver (src/plan/query_plan.h): the pipeline consumes blocks
// in prefix order, the driver re-finalizes per batch and applies the stop
// policy, and with the never-stop rule the drive is bit-identical to the
// one-shot executor for every thread count, morsel size, and batch size.
Result<StreamResult> ExecuteQueryIncremental(const SelectStatement& stmt,
                                             const Dataset& fact, const Table* dim,
                                             const StreamOptions& options) {
  QueryPlan plan;
  PipelineSpec spec;
  spec.stmt = stmt;
  spec.dataset = fact;
  spec.dim = dim;
  // policy.max_blocks passes through untouched: the driver folds the joint
  // cap into its shared budget pool, floored at the smallest-resolution
  // boundary exactly as a per-pipeline PipelineSpec::max_blocks would be.
  plan.pipelines.push_back(std::move(spec));

  PlanOptions popts;
  popts.exec = options.exec;
  popts.batch_blocks = options.batch_blocks;
  popts.policy = options.policy;
  popts.progress = options.progress;
  popts.cancel = options.cancel;

  auto run = ExecutePlan(plan, popts);
  if (!run.ok()) {
    return run.status();
  }
  StreamResult out;
  out.result = std::move(run->result);
  out.blocks_consumed = run->blocks_consumed;
  out.blocks_total = run->blocks_total;
  out.rows_consumed = run->rows_consumed;
  out.stopped_early = run->stopped_early;
  out.bound_met = run->bound_met;
  out.cancelled = run->cancelled;
  out.achieved_error = run->achieved_error;
  return out;
}

}  // namespace blink
