// Compiled predicate evaluation against (fact, dim) row pairs.
//
// Compilation resolves column names to (side, index), binds string literals
// to dictionary codes once, and flattens the tree into a compact node vector,
// so per-row evaluation does no string work.
#ifndef BLINKDB_EXEC_PREDICATE_H_
#define BLINKDB_EXEC_PREDICATE_H_

#include <vector>

#include "src/sql/analyzer.h"
#include "src/sql/ast.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace blink {

class CompiledPredicate {
 public:
  // Compiles `pred` against the fact table and optional dimension table.
  static Result<CompiledPredicate> Compile(const Predicate& pred, const Table& fact,
                                           const Table* dim);

  // Evaluates for the given fact row (and dim row when the query joins;
  // pass any value otherwise).
  bool Matches(uint64_t fact_row, uint64_t dim_row) const {
    return EvalNode(0, fact_row, dim_row);
  }

 private:
  enum class NodeKind { kAnd, kOr, kNumericCompare, kStringCompare };
  struct Node {
    NodeKind kind;
    // kAnd/kOr: children indices.
    std::vector<size_t> children;
    // leaf payload
    TableSide side = TableSide::kFact;
    size_t column = 0;
    CompareOp op = CompareOp::kEq;
    double numeric_literal = 0.0;
    int32_t code_literal = -1;  // dictionary code; -1 = literal absent from dict
  };

  bool EvalNode(size_t node, uint64_t fact_row, uint64_t dim_row) const;

  Result<size_t> CompileNode(const Predicate& pred, const Table& fact, const Table* dim);

  const Table* fact_ = nullptr;
  const Table* dim_ = nullptr;
  std::vector<Node> nodes_;
};

}  // namespace blink

#endif  // BLINKDB_EXEC_PREDICATE_H_
