// Compiled predicate evaluation against (fact, dim) row pairs.
//
// Compilation resolves column names to (side, index), binds string literals
// to dictionary codes once, and flattens the tree into a compact node vector,
// so per-row evaluation does no string work.
//
// Two evaluation modes: Matches() for one row (the scalar reference path),
// and FilterBlock() which narrows a selection vector over a columnar block
// with type-specialized loops (the morsel engine's path). AND nodes filter
// the selection sequentially; OR nodes take the union of their children's
// survivors; both preserve row order, so the two modes select identical rows.
#ifndef BLINKDB_EXEC_PREDICATE_H_
#define BLINKDB_EXEC_PREDICATE_H_

#include <algorithm>
#include <vector>

#include "src/sql/analyzer.h"
#include "src/sql/ast.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace blink {

// Reusable buffers for FilterBlock's OR-union evaluation, one level per OR
// nesting depth. Owned by the caller (one per worker) so per-block
// evaluation does not allocate.
struct PredicateScratch {
  struct Level {
    std::vector<uint8_t> keep;
    std::vector<uint32_t> sel;
    std::vector<uint64_t> dim_rows;
  };
  std::vector<Level> levels;
  // Per-block literal translation for encoded-view leaves: one keep flag per
  // dictionary entry (or RLE run), rebuilt by each leaf, reused across blocks.
  std::vector<uint8_t> lane_match;
};

class CompiledPredicate {
 public:
  // Compiles `pred` against the fact table and optional dimension table.
  static Result<CompiledPredicate> Compile(const Predicate& pred, const Table& fact,
                                           const Table* dim);

  // Evaluates for the given fact row (and dim row when the query joins;
  // pass any value otherwise).
  bool Matches(uint64_t fact_row, uint64_t dim_row) const {
    return EvalNode(0, fact_row, dim_row);
  }

  // Vectorized evaluation over one block of fact rows: filters `sel`
  // (ascending in-block offsets) in place, keeping offsets whose rows match.
  // `fact_spans` is indexed by fact column — one base-relative span per
  // column in fact_columns(), raw (Table::BlockSpan), decoded
  // (EncodedTable::DecodeRange), or an encoded view (filter-only columns of
  // compressed storage; evaluated directly over dict indices / RLE runs with
  // identical keep decisions, so answers stay bit-identical). `dim_rows`, when
  // non-null, runs parallel to `sel` (each candidate's join-resolved
  // dimension row) and is compacted alongside; the dimension side always
  // reads the resident dim table. Equivalent to keeping i iff
  // Matches(base + sel[i], dim_rows ? (*dim_rows)[i] : 0) where the spans
  // are based at `base`. Pass a caller-owned `scratch` to reuse OR-union
  // buffers across blocks (null allocates locally).
  void FilterBlock(const ColumnSpan* fact_spans, std::vector<uint32_t>& sel,
                   std::vector<uint64_t>* dim_rows,
                   PredicateScratch* scratch = nullptr) const {
    PredicateScratch local;
    PredicateScratch& s = scratch != nullptr ? *scratch : local;
    if (s.levels.size() < max_or_depth_) {
      s.levels.resize(max_or_depth_);  // recursion never resizes below
    }
    FilterNode(0, fact_spans, sel, dim_rows, s, 0);
  }

  // Fact-side columns the block path reads (sorted, unique). The caller must
  // provide a span for each of these in FilterBlock's `fact_spans`.
  const std::vector<size_t>& fact_columns() const { return fact_columns_; }

 private:
  enum class NodeKind { kAnd, kOr, kNumericCompare, kStringCompare };
  struct Node {
    NodeKind kind;
    // kAnd/kOr: children indices.
    std::vector<size_t> children;
    // leaf payload
    TableSide side = TableSide::kFact;
    size_t column = 0;
    CompareOp op = CompareOp::kEq;
    double numeric_literal = 0.0;
    int32_t code_literal = -1;  // dictionary code; -1 = literal absent from dict
  };

  bool EvalNode(size_t node, uint64_t fact_row, uint64_t dim_row) const;

  void FilterNode(size_t node, const ColumnSpan* fact_spans,
                  std::vector<uint32_t>& sel, std::vector<uint64_t>* dim_rows,
                  PredicateScratch& scratch, size_t depth) const;
  void FilterLeaf(const Node& node, const ColumnSpan* fact_spans,
                  std::vector<uint32_t>& sel, std::vector<uint64_t>* dim_rows,
                  PredicateScratch& scratch) const;
  // Leaf evaluation over an encoded view (SpanEncoding::kDictIndex/kRleRuns):
  // translate the literal into per-entry (or per-run) keep flags once, then
  // filter by packed-index lookup / run cursor without decoding a row.
  void FilterEncodedLeaf(const Node& node, const ColumnSpan& span,
                         std::vector<uint32_t>& sel,
                         std::vector<uint64_t>* dim_rows,
                         PredicateScratch& scratch) const;
  // Whether the leaf's comparison holds for a stored value lane, exactly as
  // the decoded path would see it after materialization.
  static bool LaneMatches(const Node& node, DataType type, uint64_t lane);

  Result<size_t> CompileNode(const Predicate& pred, const Table& fact, const Table* dim);
  size_t OrDepth(size_t node) const;

  const Table* fact_ = nullptr;
  const Table* dim_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<size_t> fact_columns_;  // fact-side leaf columns, sorted unique
  size_t max_or_depth_ = 0;  // OR nesting depth; sizes the scratch levels
};

}  // namespace blink

#endif  // BLINKDB_EXEC_PREDICATE_H_
