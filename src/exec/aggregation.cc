#include "src/exec/aggregation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/stats/estimators.h"
#include "src/util/string_util.h"

namespace blink {
namespace exec_internal {
namespace {

// Evaluates a HAVING predicate over a finished result row. Columns resolve to
// group values (by name) or aggregate estimates (by display name or alias).
bool EvalHaving(const Predicate& pred, const ResultRow& row,
                const std::vector<std::string>& group_names,
                const std::vector<std::string>& agg_names) {
  switch (pred.kind) {
    case Predicate::Kind::kAnd:
      for (const auto& child : pred.children) {
        if (!EvalHaving(child, row, group_names, agg_names)) {
          return false;
        }
      }
      return true;
    case Predicate::Kind::kOr:
      for (const auto& child : pred.children) {
        if (EvalHaving(child, row, group_names, agg_names)) {
          return true;
        }
      }
      return false;
    case Predicate::Kind::kCompare:
      break;
  }
  // Locate the referenced value.
  Value cell;
  bool found = false;
  for (size_t i = 0; i < group_names.size(); ++i) {
    if (EqualsIgnoreCase(group_names[i], pred.column)) {
      cell = row.group_values[i];
      found = true;
      break;
    }
  }
  if (!found) {
    for (size_t i = 0; i < agg_names.size(); ++i) {
      if (EqualsIgnoreCase(agg_names[i], pred.column)) {
        cell = Value(row.aggregates[i].value);
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return false;
  }
  if (cell.is_string() != pred.literal.is_string()) {
    return false;
  }
  if (cell.is_string()) {
    const bool eq = cell.AsString() == pred.literal.AsString();
    return pred.op == CompareOp::kEq ? eq : pred.op == CompareOp::kNe && !eq;
  }
  const double lhs = cell.AsNumeric();
  const double rhs = pred.literal.AsNumeric();
  switch (pred.op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// Deterministic output order: lexicographic on group values.
bool GroupValueLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) {
      continue;
    }
    if (a[i].is_string() && b[i].is_string()) {
      return a[i].AsString() < b[i].AsString();
    }
    return a[i].AsNumeric() < b[i].AsNumeric();
  }
  return a.size() < b.size();
}

// Quantile weight of one reservoir entry. Full scans reproduce the dataset's
// per-row weight exactly; prefix scans re-derive the weight from the prefix's
// per-stratum consumed counts (datasets with explicit per-row weight vectors
// are never streamed with early stopping, so the prefix branch only sees
// stratum-derived weights).
double QuantileWeightFor(const Dataset& fact, uint64_t row,
                         const std::vector<double>* prefix_sampled_rows) {
  if (prefix_sampled_rows == nullptr || fact.weights != nullptr) {
    return fact.RowWeight(row);
  }
  const uint32_t stratum = fact.RowStratum(row);
  const StratumCounts counts = fact.CountsFor(stratum);
  const double sampled = stratum < prefix_sampled_rows->size()
                             ? (*prefix_sampled_rows)[stratum]
                             : counts.sampled_rows;
  return sampled > 0.0 ? counts.total_rows / sampled : 1.0;
}

}  // namespace

Result<BoundQuery> BindQuery(const SelectStatement& stmt, const Dataset& fact,
                             const Table* dim) {
  if (fact.table == nullptr) {
    return Status::InvalidArgument("dataset has no table");
  }
  BoundQuery bq;
  bq.table = fact.table;
  bq.dim = dim;
  const Table& table = *fact.table;
  // Dimension columns are only addressable through a JOIN: without one there
  // is no dim row to read, so the dim schema is invisible to resolution and
  // such references fail cleanly as unknown columns.
  const Schema* dim_schema =
      dim != nullptr && stmt.join.has_value() ? &dim->schema() : nullptr;
  BLINK_RETURN_IF_ERROR(ValidateQuery(stmt, table.schema(), dim_schema));

  for (const auto& g : stmt.group_by) {
    auto ref = ResolveColumn(g, table.schema(), dim_schema);
    if (!ref.ok()) {
      return ref.status();
    }
    bq.group_cols.push_back(*ref);
    bq.group_names.push_back(g);
  }
  for (const auto& item : stmt.items) {
    if (!item.is_aggregate) {
      continue;
    }
    BoundAgg bound;
    bound.agg = item.agg;
    if (!item.agg.count_star) {
      auto ref = ResolveColumn(item.agg.column, table.schema(), dim_schema);
      if (!ref.ok()) {
        return ref.status();
      }
      bound.arg = *ref;
    }
    bq.aggs.push_back(bound);
    bq.agg_names.push_back(SelectItemName(item));
  }

  if (stmt.where.has_value()) {
    auto compiled = CompiledPredicate::Compile(
        *stmt.where, table, stmt.join.has_value() ? dim : nullptr);
    if (!compiled.ok()) {
      return compiled.status();
    }
    bq.where = std::move(compiled.value());
  }

  // Build the join hash table (dim key -> first dim row). Per §2.1 the
  // dimension side is an exact in-memory table (typically a foreign key
  // target, so keys are unique).
  if (stmt.join.has_value()) {
    if (dim == nullptr) {
      return Status::InvalidArgument("join requested but no dimension table provided");
    }
    bq.join_fact_col = table.schema().FindColumn(stmt.join->left_column);
    const auto join_dim_col = dim->schema().FindColumn(stmt.join->right_column);
    bq.join_index.reserve(dim->num_rows());
    const bool string_key =
        table.schema().column(*bq.join_fact_col).type == DataType::kString;
    for (uint64_t r = 0; r < dim->num_rows(); ++r) {
      if (string_key) {
        // Dictionary codes differ between tables; key the index by the FACT
        // table's code for the dim row's string (absent => unjoinable).
        const int32_t fact_code =
            table.column(*bq.join_fact_col).dict->Find(dim->GetString(*join_dim_col, r));
        if (fact_code >= 0) {
          bq.join_index.emplace(fact_code, r);
        }
      } else {
        bq.join_index.emplace(dim->CellKey(*join_dim_col, r), r);
      }
    }
  }

  // Collect the fact columns the block path reads, and adopt the table's
  // compressed storage when it covers the dataset (a table that grew since
  // encoding reports no encoding; see Table::encoded_blocks).
  //
  // Gathered columns — grouping, aggregate arguments, the join key — need
  // materialized rows; columns only the predicate reads do not, which is what
  // lets the compressed scan serve them as encoded views.
  std::vector<size_t> gathered;
  for (const auto& ref : bq.group_cols) {
    if (ref.side == TableSide::kFact) {
      gathered.push_back(ref.index);
    }
  }
  for (const auto& bound : bq.aggs) {
    // COUNT never gathers its argument, so it charges no column bytes.
    if (bound.agg.func != AggFunc::kCount && bound.arg.side == TableSide::kFact) {
      gathered.push_back(bound.arg.index);
    }
  }
  if (bq.join_fact_col.has_value()) {
    gathered.push_back(*bq.join_fact_col);
  }
  std::sort(gathered.begin(), gathered.end());
  gathered.erase(std::unique(gathered.begin(), gathered.end()), gathered.end());

  if (bq.where.has_value()) {
    bq.fact_cols = bq.where->fact_columns();
  }
  bq.fact_cols.insert(bq.fact_cols.end(), gathered.begin(), gathered.end());
  std::sort(bq.fact_cols.begin(), bq.fact_cols.end());
  bq.fact_cols.erase(std::unique(bq.fact_cols.begin(), bq.fact_cols.end()),
                     bq.fact_cols.end());
  // fact_cols is predicate ∪ gathered, so anything not gathered is read by
  // the predicate alone.
  bq.fact_col_filter_only.assign(bq.fact_cols.size(), 0);
  for (size_t i = 0; i < bq.fact_cols.size(); ++i) {
    bq.fact_col_filter_only[i] =
        std::binary_search(gathered.begin(), gathered.end(), bq.fact_cols[i])
            ? 0
            : 1;
  }
  bq.encoded = table.encoded_blocks();
  return bq;
}

void ProcessMorsel(const BoundQuery& bq, const Dataset& fact, const Morsel& m,
                   WorkerScratch& s, MorselPartial& out, bool count_scanned) {
  const Table& table = *bq.table;
  const size_t n = static_cast<size_t>(m.rows());
  const bool joined = bq.join_fact_col.has_value();

  const uint32_t* strata =
      fact.strata != nullptr ? fact.strata->data() + m.begin : nullptr;

  // Per-block column views for every fact column this query touches: straight
  // pointers into the raw vectors, morsel-at-a-time decodes into this
  // worker's scratch, or — for filter-only columns of compressed storage —
  // encoded views the predicate evaluates without decoding. Each decoded span
  // charges its logical bytes; encoded views charge nothing, which is what
  // makes bytes_decoded mean "bytes actually materialized".
  if (s.spans.size() < table.num_columns()) {
    s.spans.resize(table.num_columns());
  }
  for (size_t i = 0; i < bq.fact_cols.size(); ++i) {
    const size_t col = bq.fact_cols[i];
    const bool filter_only =
        bq.use_encoded_views && bq.fact_col_filter_only[i] != 0;
    s.spans[col] =
        bq.encoded != nullptr
            ? bq.encoded->DecodeRange(col, m.begin, m.end, s.decode, filter_only)
            : table.BlockSpan(col, m.begin);
    if (s.spans[col].encoding == SpanEncoding::kDecoded) {
      const double width =
          table.schema().column(col).type == DataType::kString ? 4.0 : 8.0;
      out.bytes_decoded += static_cast<double>(n) * width;
    }
  }

  // 0. Scanned-row tally per stratum (whole block, before any filtering): the
  // prefix counts n_h(prefix) that validate estimates over a stopped prefix.
  if (count_scanned) {
    if (strata == nullptr) {
      out.stratum_scanned.assign(1, static_cast<double>(n));
    } else {
      uint32_t max_stratum = 0;
      for (size_t i = 0; i < n; ++i) {
        max_stratum = std::max(max_stratum, strata[i]);
      }
      out.stratum_scanned.assign(max_stratum + 1, 0.0);
      for (size_t i = 0; i < n; ++i) {
        out.stratum_scanned[strata[i]] += 1.0;
      }
    }
  }

  // 1. Candidate selection: all rows of the block, minus join misses.
  s.sel.resize(n);
  std::iota(s.sel.begin(), s.sel.end(), 0u);
  if (joined) {
    s.join_keys.resize(n);
    GatherCellKeysSpan(s.spans[*bq.join_fact_col],
                       table.schema().column(*bq.join_fact_col).type,
                       s.sel.data(), n, s.join_keys.data());
    s.dim_rows.resize(n);
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      const auto it = bq.join_index.find(s.join_keys[i]);
      if (it != bq.join_index.end()) {  // inner join: drop unmatched fact rows
        s.sel[kept] = static_cast<uint32_t>(i);
        s.dim_rows[kept] = it->second;
        ++kept;
      }
    }
    s.sel.resize(kept);
    s.dim_rows.resize(kept);
  }

  // 2. Vectorized predicate: narrow the selection block-at-a-time.
  if (bq.where.has_value()) {
    bq.where->FilterBlock(s.spans.data(), s.sel, joined ? &s.dim_rows : nullptr,
                          &s.predicate);
  }
  const size_t cnt = s.sel.size();
  out.rows_matched += cnt;
  if (cnt == 0) {
    return;
  }

  // 3. Gather aggregate arguments once per block.
  s.agg_values.resize(bq.aggs.size());
  for (size_t a = 0; a < bq.aggs.size(); ++a) {
    const BoundAgg& bound = bq.aggs[a];
    if (bound.agg.func == AggFunc::kCount) {
      continue;
    }
    s.agg_values[a].resize(cnt);
    if (bound.arg.side == TableSide::kFact) {
      GatherNumericSpan(s.spans[bound.arg.index],
                        table.schema().column(bound.arg.index).type, s.sel.data(),
                        cnt, s.agg_values[a].data());
    } else {
      for (size_t i = 0; i < cnt; ++i) {
        s.agg_values[a][i] = bq.dim->GetNumeric(bound.arg.index, s.dim_rows[i]);
      }
    }
  }

  // 4a. Global aggregate: one group, tight per-aggregate loops.
  if (bq.group_cols.empty()) {
    auto [it, inserted] = out.groups.try_emplace(std::vector<int64_t>{});
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(bq.aggs.size());
    }
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound = bq.aggs[a];
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        for (size_t i = 0; i < cnt; ++i) {
          accum.values.emplace_back(s.agg_values[a][i], m.begin + s.sel[i]);
        }
      } else if (bound.agg.func == AggFunc::kCount) {
        if (strata == nullptr) {
          // Single stratum, unit values: the whole block folds into one add
          // (exact, so identical to row-at-a-time accumulation).
          StratumCell& cell = accum.CellFor(0);
          const double c = static_cast<double>(cnt);
          cell.matched += c;
          cell.sum += c;
          cell.sum_sq += c;
        } else {
          for (size_t i = 0; i < cnt; ++i) {
            StratumCell& cell = accum.CellFor(strata[s.sel[i]]);
            cell.matched += 1.0;
            cell.sum += 1.0;
            cell.sum_sq += 1.0;
          }
        }
      } else {
        const double* vals = s.agg_values[a].data();
        if (strata == nullptr) {
          StratumCell& cell = accum.CellFor(0);
          for (size_t i = 0; i < cnt; ++i) {
            const double v = vals[i];
            cell.matched += 1.0;
            cell.sum += v;
            cell.sum_sq += v * v;
          }
        } else {
          for (size_t i = 0; i < cnt; ++i) {
            const double v = vals[i];
            StratumCell& cell = accum.CellFor(strata[s.sel[i]]);
            cell.matched += 1.0;
            cell.sum += v;
            cell.sum_sq += v * v;
          }
        }
      }
    }
    return;
  }

  // 4b. Grouped aggregate: gather group keys per column, then accumulate.
  s.group_keys.resize(bq.group_cols.size());
  for (size_t j = 0; j < bq.group_cols.size(); ++j) {
    const ColumnRef& ref = bq.group_cols[j];
    s.group_keys[j].resize(cnt);
    if (ref.side == TableSide::kFact) {
      GatherCellKeysSpan(s.spans[ref.index], table.schema().column(ref.index).type,
                         s.sel.data(), cnt, s.group_keys[j].data());
    } else {
      for (size_t i = 0; i < cnt; ++i) {
        s.group_keys[j][i] = bq.dim->CellKey(ref.index, s.dim_rows[i]);
      }
    }
  }
  if (s.group_hint > 0) {
    out.groups.reserve(s.group_hint);
  }
  for (size_t i = 0; i < cnt; ++i) {
    s.key.clear();
    for (size_t j = 0; j < bq.group_cols.size(); ++j) {
      s.key.push_back(s.group_keys[j][i]);
    }
    auto [it, inserted] = out.groups.try_emplace(s.key);
    GroupState& group = it->second;
    if (inserted) {
      group.aggs.resize(bq.aggs.size());
      group.first_row = m.begin + s.sel[i];
      group.first_dim_row = joined ? s.dim_rows[i] : 0;
    }
    const uint32_t stratum = strata != nullptr ? strata[s.sel[i]] : 0;
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound = bq.aggs[a];
      AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        accum.values.emplace_back(s.agg_values[a][i], m.begin + s.sel[i]);
      } else {
        StratumCell& cell = accum.CellFor(stratum);
        cell.matched += 1.0;
        const double v =
            bound.agg.func == AggFunc::kCount ? 1.0 : s.agg_values[a][i];
        cell.sum += v;
        cell.sum_sq += v * v;
      }
    }
  }
  s.group_hint = out.groups.size();
}

void MergePartials(std::vector<MorselPartial>& partials, size_t num_aggs,
                   GroupMap& groups, ScanStats& stats,
                   std::vector<double>* scanned_per_stratum) {
  for (MorselPartial& partial : partials) {
    stats.rows_matched += partial.rows_matched;
    if (scanned_per_stratum != nullptr) {
      if (partial.stratum_scanned.size() > scanned_per_stratum->size()) {
        scanned_per_stratum->resize(partial.stratum_scanned.size(), 0.0);
      }
      for (size_t h = 0; h < partial.stratum_scanned.size(); ++h) {
        (*scanned_per_stratum)[h] += partial.stratum_scanned[h];
      }
    }
    for (auto& [key, pg] : partial.groups) {
      auto [it, inserted] = groups.try_emplace(key);
      GroupState& group = it->second;
      if (inserted) {
        group.first_row = pg.first_row;
        group.first_dim_row = pg.first_dim_row;
        group.aggs.resize(num_aggs);
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        AggAccum& into = group.aggs[a];
        AggAccum& from = pg.aggs[a];
        if (!from.values.empty()) {
          into.values.insert(into.values.end(), from.values.begin(), from.values.end());
        }
        for (uint32_t s = 0; s < from.num_strata(); ++s) {
          const StratumCell& cell = from.cell(s);
          if (cell.matched == 0.0) {
            continue;
          }
          StratumCell& dst = into.CellFor(s);
          dst.matched += cell.matched;
          dst.sum += cell.sum;
          dst.sum_sq += cell.sum_sq;
        }
      }
    }
  }
}

Result<QueryResult> Finalize(const SelectStatement& stmt, const Dataset& fact,
                             const BoundQuery& bq, const GroupMap& groups,
                             ScanStats stats,
                             const std::vector<double>* prefix_sampled_rows) {
  QueryResult result;
  result.group_names = bq.group_names;
  result.aggregate_names = bq.agg_names;
  result.stats = stats;
  if (stmt.bounds.kind == QueryBounds::Kind::kError || stmt.report_error_columns) {
    result.confidence = stmt.bounds.confidence;
  }

  auto emit_row = [&](const GroupState& group) -> void {
    ResultRow row;
    row.group_values.reserve(bq.group_cols.size());
    for (const auto& ref : bq.group_cols) {
      row.group_values.push_back(ref.side == TableSide::kFact
                                     ? bq.table->GetValue(ref.index, group.first_row)
                                     : bq.dim->GetValue(ref.index, group.first_dim_row));
    }
    row.aggregates.reserve(bq.aggs.size());
    for (size_t a = 0; a < bq.aggs.size(); ++a) {
      const BoundAgg& bound = bq.aggs[a];
      const AggAccum& accum = group.aggs[a];
      if (bound.agg.func == AggFunc::kQuantile) {
        std::vector<std::pair<double, double>> value_weight;
        value_weight.reserve(accum.values.size());
        for (const auto& [value, fact_row] : accum.values) {
          value_weight.emplace_back(
              value, QuantileWeightFor(fact, fact_row, prefix_sampled_rows));
        }
        Estimate q = WeightedQuantile(std::move(value_weight), bound.agg.quantile_p);
        if (fact.is_exact()) {
          q.variance = 0.0;  // computed over the entire population
        }
        row.aggregates.push_back(q);
        continue;
      }
      std::vector<StratumSummary> strata;
      strata.reserve(accum.num_strata());
      for (uint32_t stratum_id = 0; stratum_id < accum.num_strata(); ++stratum_id) {
        const StratumCell& cell = accum.cell(stratum_id);
        if (cell.matched == 0.0) {
          continue;  // untouched stratum: contributes nothing
        }
        const StratumCounts counts = fact.CountsFor(stratum_id);
        StratumSummary s;
        s.total_rows = counts.total_rows;
        s.sampled_rows =
            prefix_sampled_rows != nullptr && stratum_id < prefix_sampled_rows->size()
                ? (*prefix_sampled_rows)[stratum_id]
                : counts.sampled_rows;
        s.matched = cell.matched;
        s.sum = cell.sum;
        s.sum_sq = cell.sum_sq;
        strata.push_back(s);
      }
      switch (bound.agg.func) {
        case AggFunc::kCount:
          row.aggregates.push_back(StratifiedCount(strata));
          break;
        case AggFunc::kSum:
          row.aggregates.push_back(StratifiedSum(strata));
          break;
        case AggFunc::kAvg:
          row.aggregates.push_back(StratifiedAvg(strata));
          break;
        case AggFunc::kQuantile:
          break;  // handled above
      }
    }
    result.rows.push_back(std::move(row));
  };

  // SQL semantics: a global aggregate (no GROUP BY) always yields one row,
  // even when nothing matched.
  if (groups.empty() && bq.group_cols.empty()) {
    GroupState empty_group;
    empty_group.aggs.resize(bq.aggs.size());
    emit_row(empty_group);
  } else {
    result.rows.reserve(groups.size());
    for (const auto& [group_key, group] : groups) {
      (void)group_key;
      emit_row(group);
    }
  }

  // HAVING filter on finished rows.
  if (stmt.having.has_value()) {
    std::vector<ResultRow> kept;
    kept.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (EvalHaving(*stmt.having, row, result.group_names, result.aggregate_names)) {
        kept.push_back(std::move(row));
      }
    }
    result.rows = std::move(kept);
  }

  std::sort(result.rows.begin(), result.rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return GroupValueLess(a.group_values, b.group_values);
            });
  return result;
}

}  // namespace exec_internal
}  // namespace blink
