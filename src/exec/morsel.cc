#include "src/exec/morsel.h"

#include <algorithm>

namespace blink {
namespace {

// The cut points of one carving: every boundary inside (0, total_rows),
// ascending and deduplicated, terminated by total_rows itself.
std::vector<uint64_t> CollectCuts(uint64_t total_rows,
                                  const std::vector<uint64_t>* boundaries) {
  std::vector<uint64_t> cuts;
  if (boundaries != nullptr) {
    for (uint64_t b : *boundaries) {
      if (b > 0 && b < total_rows) {
        cuts.push_back(b);
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  }
  cuts.push_back(total_rows);
  return cuts;
}

}  // namespace

MorselPlan CarveMorsels(uint64_t total_rows, uint32_t target_rows,
                        const std::vector<uint64_t>* boundaries) {
  MorselPlan plan;
  plan.total_rows = total_rows;
  plan.target_rows = std::max<uint32_t>(1, target_rows);
  if (total_rows == 0) {
    return plan;
  }
  const std::vector<uint64_t> cuts = CollectCuts(total_rows, boundaries);
  plan.morsels.reserve(total_rows / plan.target_rows + cuts.size());
  uint64_t begin = 0;
  for (uint64_t cut : cuts) {
    while (begin < cut) {
      Morsel m;
      m.begin = begin;
      m.end = std::min<uint64_t>(begin + plan.target_rows, cut);
      m.index = static_cast<uint32_t>(plan.morsels.size());
      plan.morsels.push_back(m);
      begin = m.end;
    }
  }
  return plan;
}

uint64_t CountMorsels(uint64_t total_rows, uint32_t target_rows,
                      const std::vector<uint64_t>* boundaries) {
  target_rows = std::max<uint32_t>(1, target_rows);
  if (total_rows == 0) {
    return 0;
  }
  uint64_t blocks = 0;
  uint64_t begin = 0;
  for (uint64_t cut : CollectCuts(total_rows, boundaries)) {
    const uint64_t segment = cut - begin;
    blocks += (segment + target_rows - 1) / target_rows;
    begin = cut;
  }
  return blocks;
}

}  // namespace blink
