#include "src/util/string_util.h"

#include <cctype>
#include <cstdio>

namespace blink {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace blink
