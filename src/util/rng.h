// Deterministic pseudo-random number generation.
//
// Every randomized component of blinkdb-cpp (sample creation, workload
// generation, Monte-Carlo tests) draws from Rng so that experiments are
// reproducible from a single seed. The generator is SplitMix64-seeded
// xoshiro256**, which is fast, high-quality, and trivially portable.
#ifndef BLINKDB_UTIL_RNG_H_
#define BLINKDB_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blink {

// A small, fast, seedable random number generator (xoshiro256**).
// Not thread-safe; create one Rng per thread (see Split()).
class Rng {
 public:
  // Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Returns the next 64 random bits.
  uint64_t NextUint64();

  // Returns a uniformly distributed integer in [0, bound). Requires bound > 0.
  // Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // Returns a uniformly distributed double in [0, 1).
  double NextDouble();

  // Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Returns a standard normal variate (Marsaglia polar method).
  double NextGaussian();

  // Derives an independent child generator; useful for giving each worker
  // thread its own stream.
  Rng Split();

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) via partial Fisher-Yates.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace blink

#endif  // BLINKDB_UTIL_RNG_H_
