#include "src/util/status.h"

namespace blink {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace blink
