#include "src/util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace blink {
namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

// Recursive-descent parser over a bounded cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    auto value = ParseValue(0);
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(depth);
    }
    if (c == '[') {
      return ParseArray(depth);
    }
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) {
        return s.status();
      }
      return JsonValue(std::move(s.value()));
    }
    if (ConsumeLiteral("null")) {
      return JsonValue(nullptr);
    }
    if (ConsumeLiteral("true")) {
      return JsonValue(true);
    }
    if (ConsumeLiteral("false")) {
      return JsonValue(false);
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return out;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      auto value = ParseValue(depth + 1);
      if (!value.ok()) {
        return value;
      }
      out.Set(std::move(key.value()), std::move(value.value()));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return out;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return out;
    }
    for (;;) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) {
        return value;
      }
      out.Append(std::move(value.value()));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return out;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as-is; the protocol's strings are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape sequence");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = pos_ > start && text_[pos_ - 1] != '-';
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      // Let strtod validate the rest of the mantissa/exponent.
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
      }
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(v));
      }
      // Falls through: out-of-range integers degrade to double.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Fail("malformed number '" + token + "'");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue::Kind JsonValue::kind() const {
  switch (data_.index()) {
    case 0:
      return Kind::kNull;
    case 1:
      return Kind::kBool;
    case 2:
      return Kind::kInt;
    case 3:
      return Kind::kDouble;
    case 4:
      return Kind::kString;
    case 5:
      return Kind::kArray;
    default:
      return Kind::kObject;
  }
}

int64_t JsonValue::AsInt() const {
  if (kind() == Kind::kDouble) {
    return static_cast<int64_t>(std::get<double>(data_));
  }
  return std::get<int64_t>(data_);
}

uint64_t JsonValue::AsUint() const { return static_cast<uint64_t>(AsInt()); }

double JsonValue::AsDouble() const {
  if (kind() == Kind::kInt) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  return std::get<double>(data_);
}

JsonValue& JsonValue::Set(std::string key, JsonValue v) {
  auto& members = std::get<ObjectStorage>(data_);
  for (auto& member : members) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  members.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& member : std::get<ObjectStorage>(data_)) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

void JsonValue::SerializeTo(std::string& out) const {
  switch (kind()) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += std::get<bool>(data_) ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(std::get<int64_t>(data_));
      break;
    case Kind::kDouble: {
      const double v = std::get<double>(data_);
      if (!std::isfinite(v)) {
        out += "null";  // JSON has no Inf/NaN; the protocol never emits them
        break;
      }
      char buf[32];
      // 17 significant digits round-trip every finite double exactly.
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out += buf;
      break;
    }
    case Kind::kString:
      AppendEscaped(out, std::get<std::string>(data_));
      break;
    case Kind::kArray: {
      out.push_back('[');
      const auto& items = std::get<ArrayStorage>(data_);
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        items[i].SerializeTo(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      const auto& members = std::get<ObjectStorage>(data_);
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        AppendEscaped(out, members[i].first);
        out.push_back(':');
        members[i].second.SerializeTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(out);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace blink
