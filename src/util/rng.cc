#include "src/util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace blink {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * mul;
  has_cached_gaussian_ = true;
  return u * mul;
}

Rng Rng::Split() { return Rng(NextUint64()); }

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  if (k == 0) {
    return {};
  }
  // For small k relative to n, use hash-set rejection; otherwise partial
  // Fisher-Yates over an index vector.
  if (k < n / 16) {
    std::unordered_set<uint64_t> chosen;
    chosen.reserve(static_cast<size_t>(k) * 2);
    std::vector<uint64_t> out;
    out.reserve(static_cast<size_t>(k));
    while (out.size() < k) {
      uint64_t candidate = NextBounded(n);
      if (chosen.insert(candidate).second) {
        out.push_back(candidate);
      }
    }
    return out;
  }
  std::vector<uint64_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + NextBounded(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(static_cast<size_t>(k));
  return indices;
}

}  // namespace blink
