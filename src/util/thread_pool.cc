#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace blink {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Chunk work so tiny iterations do not drown in queue overhead.
  const size_t num_chunks = std::min(n, workers_.size() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < num_chunks; ++c) {
    Submit([&, chunk, n] {
      for (;;) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) {
          break;
        }
        const size_t end = std::min(begin + chunk, n);
        for (size_t i = begin; i < end; ++i) {
          fn(i);
        }
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace blink
