// Minimal JSON document model for the wire protocol (docs/PROTOCOL.md).
//
// The server and client exchange length-prefixed JSON frames; this module is
// the self-contained serializer/parser they share — no external dependency.
// Scope is deliberately small: UTF-8 text, objects with insertion-ordered
// keys, int64/double numbers, no comments, no trailing commas.
//
// Round-trip guarantee: doubles serialize with 17 significant digits
// ("%.17g"), which strtod parses back to the identical bit pattern — the
// property that makes a FINAL frame's estimates bit-identical to the
// in-process answer (tests/server_test.cc pins this). Non-finite doubles
// have no JSON representation and serialize as `null`; the protocol never
// legitimately produces them.
#ifndef BLINKDB_UTIL_JSON_H_
#define BLINKDB_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace blink {

// A dynamically typed JSON value. Integers that fit int64 keep full
// precision through a round trip; every other number is a double.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}                    // NOLINT
  JsonValue(bool v) : data_(v) {}                                  // NOLINT
  JsonValue(int64_t v) : data_(v) {}                               // NOLINT
  JsonValue(int v) : data_(static_cast<int64_t>(v)) {}             // NOLINT
  // Wire counters are specified as [0, 2^63) (docs/PROTOCOL.md §1), so the
  // int64 storage is lossless for every legal value.
  JsonValue(uint64_t v) : data_(static_cast<int64_t>(v)) {}        // NOLINT
  JsonValue(double v) : data_(v) {}                                // NOLINT
  JsonValue(std::string v) : data_(std::move(v)) {}                // NOLINT
  JsonValue(const char* v) : data_(std::string(v)) {}              // NOLINT

  static JsonValue Array() { return JsonValue(ArrayStorage{}); }
  static JsonValue Object() { return JsonValue(ObjectStorage{}); }

  Kind kind() const;
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kInt || kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool AsBool() const { return std::get<bool>(data_); }
  // Numeric views: kInt and kDouble interconvert (counts arrive as either).
  int64_t AsInt() const;
  uint64_t AsUint() const;
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(data_); }

  // --- Arrays ---------------------------------------------------------------
  void Append(JsonValue v) { std::get<ArrayStorage>(data_).push_back(std::move(v)); }
  const std::vector<JsonValue>& items() const { return std::get<ArrayStorage>(data_); }

  // --- Objects (insertion-ordered; Set replaces an existing key) ------------
  JsonValue& Set(std::string key, JsonValue v);
  // Null when the key is absent.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<Member>& members() const { return std::get<ObjectStorage>(data_); }

  // Compact serialization (no whitespace). Non-finite doubles emit `null`.
  std::string Serialize() const;

  // Strict parse of one JSON document (trailing non-whitespace is an error;
  // nesting is capped to guard the recursive descent).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  using ArrayStorage = std::vector<JsonValue>;
  using ObjectStorage = std::vector<Member>;
  explicit JsonValue(ArrayStorage v) : data_(std::move(v)) {}
  explicit JsonValue(ObjectStorage v) : data_(std::move(v)) {}

  void SerializeTo(std::string& out) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, ArrayStorage,
               ObjectStorage>
      data_;
};

}  // namespace blink

#endif  // BLINKDB_UTIL_JSON_H_
