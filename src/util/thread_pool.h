// Fixed-size thread pool used for parallel sample creation (§5 of the paper
// leverages Hive's parallel execution engine; we substitute worker threads).
#ifndef BLINKDB_UTIL_THREAD_POOL_H_
#define BLINKDB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace blink {

// A simple FIFO thread pool. Submit tasks with Submit(); Wait() blocks until
// the queue is drained and all workers are idle. The destructor joins all
// threads.
class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers (defaults to hardware
  // concurrency, at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for execution.
  void Submit(std::function<void()> task);

  // Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  // Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace blink

#endif  // BLINKDB_UTIL_THREAD_POOL_H_
