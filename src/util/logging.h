// Minimal leveled logging for blinkdb-cpp.
//
// Logging defaults to warnings-and-above so tests and benchmarks stay quiet;
// examples raise the level to kInfo to narrate what the engine is doing.
#ifndef BLINKDB_UTIL_LOGGING_H_
#define BLINKDB_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace blink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Returns the mutable process-wide minimum level.
LogLevel& MinLogLevel();

// RAII line logger: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      std::cerr << stream_.str() << "\n";
    }
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      default:
        return "?";
    }
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

#define BLINK_LOG(level) ::blink::LogMessage(::blink::LogLevel::level, __FILE__, __LINE__)

}  // namespace blink

#endif  // BLINKDB_UTIL_LOGGING_H_
