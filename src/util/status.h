// Lightweight status / result types used across blinkdb-cpp.
//
// The library reports recoverable errors (bad SQL, missing table, infeasible
// optimization) through Status / Result<T> rather than exceptions, so callers
// embedded in long-running services can handle them without unwinding.
#ifndef BLINKDB_UTIL_STATUS_H_
#define BLINKDB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace blink {

// Error categories surfaced by the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad SQL, negative budget, ...)
  kNotFound,          // unknown table / column / sample
  kFailedPrecondition,// operation not valid in the current state
  kUnimplemented,     // recognized but unsupported construct
  kInternal,          // invariant violation inside the engine
  kResourceExhausted, // budget / capacity exceeded
  kInfeasible,        // optimizer: no solution satisfies the constraints
  kDeadlineExceeded,  // a wall-clock deadline (e.g. a recv timeout) expired
  kDataLoss,          // unrecoverable stream corruption (e.g. truncated frame)
};

// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  // Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-status result. `value()` asserts on the error path; callers must
// check `ok()` first (or use `status()` to propagate).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse: `return my_value;` / `return Status::NotFound(...)`.
  Result(T value) : data_(std::move(value)) {}           // NOLINT
  Result(Status status) : data_(std::move(status)) {     // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result(Status) requires an error");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates an error status out of the enclosing function.
#define BLINK_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::blink::Status status_ = (expr);          \
    if (!status_.ok()) {                       \
      return status_;                          \
    }                                          \
  } while (false)

}  // namespace blink

#endif  // BLINKDB_UTIL_STATUS_H_
