// Small string helpers shared by the SQL front end and report printers.
#ifndef BLINKDB_UTIL_STRING_UTIL_H_
#define BLINKDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace blink {

// Lowercases ASCII characters in `s`.
std::string AsciiToLower(std::string_view s);

// Uppercases ASCII characters in `s`.
std::string AsciiToUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Formats a byte count as a human-readable string ("1.5 GB").
std::string HumanBytes(double bytes);

// Formats seconds adaptively ("1.2 ms", "3.4 s", "2.1 min").
std::string HumanSeconds(double seconds);

}  // namespace blink

#endif  // BLINKDB_UTIL_STRING_UTIL_H_
