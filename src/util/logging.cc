#include "src/util/logging.h"

namespace blink {

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kWarning;
  return level;
}

}  // namespace blink
