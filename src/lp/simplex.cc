#include "src/lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace blink {
namespace {

constexpr double kEps = 1e-9;
constexpr size_t kMaxIterations = 200'000;

// Dense tableau:
//   rows 0..m-1: constraints (coefficients | rhs)
//   row  m     : objective row (reduced costs | -objective_value)
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    const double p = At(pivot_row, pivot_col);
    assert(std::fabs(p) > kEps);
    const double inv = 1.0 / p;
    for (size_t c = 0; c < cols_; ++c) {
      At(pivot_row, c) *= inv;
    }
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) {
        continue;
      }
      const double factor = At(r, pivot_col);
      if (std::fabs(factor) < kEps) {
        continue;
      }
      for (size_t c = 0; c < cols_; ++c) {
        At(r, c) -= factor * At(pivot_row, c);
      }
    }
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Runs simplex iterations on `t` (maximization: choose entering column with
// most negative reduced cost in the objective row `obj_row`). Constraint rows
// are [0, m); columns in [0, num_cols_usable) are eligible. Returns kOptimal /
// kUnbounded / kIterationLimit and updates `basis` (basis[r] = basic column).
LpStatus RunSimplexPhase(Tableau& t, std::vector<size_t>& basis, size_t obj_row, size_t m,
                         size_t num_cols_usable) {
  const size_t rhs_col = t.cols() - 1;
  size_t iterations = 0;
  bool bland = false;
  for (;;) {
    if (++iterations > kMaxIterations) {
      return LpStatus::kIterationLimit;
    }
    if (iterations > 10'000) {
      bland = true;  // anti-cycling
    }
    // Entering column.
    size_t pivot_col = num_cols_usable;
    double best = -kEps;
    for (size_t c = 0; c < num_cols_usable; ++c) {
      const double rc = t.At(obj_row, c);
      if (bland) {
        if (rc < -kEps) {
          pivot_col = c;
          break;
        }
      } else if (rc < best) {
        best = rc;
        pivot_col = c;
      }
    }
    if (pivot_col == num_cols_usable) {
      return LpStatus::kOptimal;
    }
    // Leaving row: minimum ratio test.
    size_t pivot_row = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < m; ++r) {
      const double a = t.At(r, pivot_col);
      if (a > kEps) {
        const double ratio = t.At(r, rhs_col) / a;
        if (ratio < best_ratio - kEps ||
            (bland && ratio < best_ratio + kEps && r < pivot_row)) {
          best_ratio = ratio;
          pivot_row = r;
        }
      }
    }
    if (pivot_row == m) {
      return LpStatus::kUnbounded;
    }
    t.Pivot(pivot_row, pivot_col);
    basis[pivot_row] = pivot_col;
  }
}

}  // namespace

size_t LpProblem::AddVariable(double objective_coeff, double upper_bound) {
  objective.push_back(objective_coeff);
  upper_bounds.push_back(upper_bound);
  return num_vars++;
}

LpSolution SolveLp(const LpProblem& problem) {
  assert(problem.objective.size() == problem.num_vars);
  assert(problem.upper_bounds.size() == problem.num_vars);

  // Materialize upper bounds as explicit <= constraints.
  std::vector<LinearConstraint> cons = problem.constraints;
  for (size_t v = 0; v < problem.num_vars; ++v) {
    const double ub = problem.upper_bounds[v];
    if (std::isfinite(ub)) {
      LinearConstraint c;
      c.terms = {{v, 1.0}};
      c.relation = Relation::kLe;
      c.rhs = ub;
      cons.push_back(std::move(c));
    }
  }

  const size_t m = cons.size();
  const size_t n = problem.num_vars;

  // Column layout: [structural n][slack/surplus s][artificial a][rhs].
  size_t num_slack = 0;
  for (const auto& c : cons) {
    if (c.relation != Relation::kEq) {
      ++num_slack;
    }
  }
  // Count artificials: rows that need them (>= with positive rhs, =, or <=
  // with negative rhs after normalization). We normalize rhs >= 0 first.
  struct Row {
    std::vector<std::pair<size_t, double>> terms;
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(m);
  for (const auto& c : cons) {
    Row r{c.terms, c.relation, c.rhs};
    if (r.rhs < 0.0) {
      for (auto& [v, coeff] : r.terms) {
        (void)v;
        coeff = -coeff;
      }
      r.rhs = -r.rhs;
      if (r.rel == Relation::kLe) {
        r.rel = Relation::kGe;
      } else if (r.rel == Relation::kGe) {
        r.rel = Relation::kLe;
      }
    }
    rows.push_back(std::move(r));
  }
  size_t num_artificial = 0;
  for (const auto& r : rows) {
    if (r.rel != Relation::kLe) {
      ++num_artificial;
    }
  }

  const size_t slack_base = n;
  const size_t art_base = n + num_slack;
  const size_t total_cols = n + num_slack + num_artificial + 1;  // + rhs
  const size_t rhs_col = total_cols - 1;
  const size_t obj_row = m;       // phase-2 objective
  const size_t phase1_row = m + 1;

  Tableau t(m + 2, total_cols);
  std::vector<size_t> basis(m);

  size_t slack_idx = 0;
  size_t art_idx = 0;
  for (size_t r = 0; r < m; ++r) {
    for (const auto& [v, coeff] : rows[r].terms) {
      t.At(r, v) += coeff;
    }
    t.At(r, rhs_col) = rows[r].rhs;
    switch (rows[r].rel) {
      case Relation::kLe: {
        const size_t sc = slack_base + slack_idx++;
        t.At(r, sc) = 1.0;
        basis[r] = sc;
        break;
      }
      case Relation::kGe: {
        const size_t sc = slack_base + slack_idx++;
        t.At(r, sc) = -1.0;  // surplus
        const size_t ac = art_base + art_idx++;
        t.At(r, ac) = 1.0;
        basis[r] = ac;
        break;
      }
      case Relation::kEq: {
        const size_t ac = art_base + art_idx++;
        t.At(r, ac) = 1.0;
        basis[r] = ac;
        break;
      }
    }
  }

  // Phase-2 objective row: minimize -(c^T x)  =>  row holds -c.
  for (size_t v = 0; v < n; ++v) {
    t.At(obj_row, v) = -problem.objective[v];
  }

  LpSolution solution;

  if (num_artificial > 0) {
    // Phase-1 objective: minimize sum of artificials. Row = sum of artificial
    // columns negated, then eliminate basic artificials.
    for (size_t a = 0; a < num_artificial; ++a) {
      t.At(phase1_row, art_base + a) = 1.0;
    }
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= art_base) {
        for (size_t c = 0; c < total_cols; ++c) {
          t.At(phase1_row, c) -= t.At(r, c);
        }
      }
    }
    const LpStatus st = RunSimplexPhase(t, basis, phase1_row, m,
                                        /*num_cols_usable=*/total_cols - 1);
    if (st == LpStatus::kIterationLimit) {
      solution.status = st;
      return solution;
    }
    const double infeasibility = -t.At(phase1_row, rhs_col);
    if (infeasibility > 1e-6) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive any remaining artificials out of the basis (degenerate rows).
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= art_base) {
        size_t enter = total_cols;
        for (size_t c = 0; c < art_base; ++c) {
          if (std::fabs(t.At(r, c)) > kEps) {
            enter = c;
            break;
          }
        }
        if (enter < total_cols) {
          t.Pivot(r, enter);
          basis[r] = enter;
        }
        // else: the row is all-zero over structural columns; redundant.
      }
    }
  }

  // Phase 2: run on the real objective, excluding artificial columns.
  const LpStatus st2 = RunSimplexPhase(t, basis, obj_row, m,
                                       /*num_cols_usable=*/art_base);
  if (st2 != LpStatus::kOptimal) {
    solution.status = st2;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.values.assign(problem.num_vars, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) {
      solution.values[basis[r]] = t.At(r, rhs_col);
    }
  }
  solution.objective = 0.0;
  for (size_t v = 0; v < n; ++v) {
    solution.objective += problem.objective[v] * solution.values[v];
  }
  return solution;
}

}  // namespace blink
