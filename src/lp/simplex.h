// Dense two-phase primal simplex for small/medium linear programs.
//
// This module substitutes the GNU Linear Programming Kit used by the paper
// (§3.2.2, reference [4]) for solving the sample-selection MILP. Problems are
// expressed as: maximize c^T x subject to linear constraints and variable
// bounds 0 <= x <= ub.
#ifndef BLINKDB_LP_SIMPLEX_H_
#define BLINKDB_LP_SIMPLEX_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace blink {

// Constraint sense.
enum class Relation { kLe, kGe, kEq };

// A sparse linear constraint: sum(coeff * x[var]) REL rhs.
struct LinearConstraint {
  std::vector<std::pair<size_t, double>> terms;
  Relation relation = Relation::kLe;
  double rhs = 0.0;
};

// maximize objective . x  s.t. constraints, 0 <= x <= upper_bounds.
struct LpProblem {
  size_t num_vars = 0;
  std::vector<double> objective;          // size num_vars
  std::vector<double> upper_bounds;       // size num_vars; +inf = unbounded
  std::vector<LinearConstraint> constraints;

  // Adds a variable with the given objective coefficient and upper bound;
  // returns its index.
  size_t AddVariable(double objective_coeff,
                     double upper_bound = std::numeric_limits<double>::infinity());
  void AddConstraint(LinearConstraint c) { constraints.push_back(std::move(c)); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // size num_vars when kOptimal
};

// Solves the LP with two-phase dense tableau simplex. Deterministic; Bland's
// rule engages automatically to escape degenerate cycling.
LpSolution SolveLp(const LpProblem& problem);

}  // namespace blink

#endif  // BLINKDB_LP_SIMPLEX_H_
