#include "src/lp/milp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace blink {
namespace {

// A node fixes a subset of the binary variables to 0 or 1.
struct Node {
  std::vector<std::pair<size_t, int>> fixings;  // (var, value)
};

// Applies fixings by pinning bounds: x = v  <=>  ub = lo = v. Our LpProblem
// has implicit lower bound 0, so fixing to 1 adds constraint x >= 1 and
// ub = 1; fixing to 0 sets ub = 0.
LpProblem ApplyFixings(const LpProblem& base, const std::vector<std::pair<size_t, int>>& fixings) {
  LpProblem p = base;
  for (const auto& [var, value] : fixings) {
    if (value == 0) {
      p.upper_bounds[var] = 0.0;
    } else {
      p.upper_bounds[var] = 1.0;
      LinearConstraint c;
      c.terms = {{var, 1.0}};
      c.relation = Relation::kGe;
      c.rhs = 1.0;
      p.AddConstraint(std::move(c));
    }
  }
  return p;
}

}  // namespace

MilpSolution SolveMilp(const MilpProblem& problem, const MilpOptions& options) {
  MilpSolution best;
  best.status = MilpStatus::kInfeasible;
  best.objective = -std::numeric_limits<double>::infinity();

  std::vector<Node> stack;
  stack.push_back(Node{});
  uint64_t nodes = 0;
  bool hit_node_limit = false;

  while (!stack.empty()) {
    if (nodes >= options.max_nodes) {
      hit_node_limit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++nodes;

    const LpProblem sub = ApplyFixings(problem.lp, node.fixings);
    const LpSolution relax = SolveLp(sub);
    if (relax.status == LpStatus::kInfeasible) {
      continue;
    }
    if (relax.status == LpStatus::kUnbounded) {
      // An unbounded relaxation of a bounded-binary problem means the
      // continuous part is unbounded; surface as infeasible-for-B&B.
      continue;
    }
    if (relax.status == LpStatus::kIterationLimit) {
      continue;
    }
    if (relax.objective <= best.objective + options.absolute_gap) {
      continue;  // bound prune
    }
    // Branch on the most undecided binary (fraction closest to 0.5).
    size_t branch_var = problem.lp.num_vars;
    double most_undecided = options.integrality_tol;
    for (size_t v : problem.binary_vars) {
      const double x = relax.values[v];
      const double frac = x - std::floor(x);
      const double undecided = std::min(frac, 1.0 - frac);
      if (undecided > most_undecided) {
        most_undecided = undecided;
        branch_var = v;
      }
    }
    if (branch_var == problem.lp.num_vars) {
      // Integral: candidate incumbent.
      if (relax.objective > best.objective) {
        best.status = MilpStatus::kOptimal;
        best.objective = relax.objective;
        best.values = relax.values;
        // Snap binaries exactly.
        for (size_t v : problem.binary_vars) {
          best.values[v] = std::round(best.values[v]);
        }
      }
      continue;
    }
    // Branch: explore the rounded-to-1 child first (greedy depth-first).
    Node zero = node;
    zero.fixings.emplace_back(branch_var, 0);
    Node one = std::move(node);
    one.fixings.emplace_back(branch_var, 1);
    const bool prefer_one = relax.values[branch_var] >= 0.5;
    if (prefer_one) {
      stack.push_back(std::move(zero));
      stack.push_back(std::move(one));
    } else {
      stack.push_back(std::move(one));
      stack.push_back(std::move(zero));
    }
  }

  best.nodes_explored = nodes;
  if (hit_node_limit && best.status != MilpStatus::kOptimal) {
    best.status = MilpStatus::kNodeLimit;
  }
  return best;
}

}  // namespace blink
