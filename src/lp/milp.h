// Mixed-integer linear programming via LP-relaxation branch-and-bound.
//
// BlinkDB's sample-selection problem (§3.2.1, equations (2)-(5)) is a MILP
// with binary z_j variables; the paper solves it with GLPK. This solver
// handles that instance class exactly: maximize over continuous y / t
// variables and binary z variables.
#ifndef BLINKDB_LP_MILP_H_
#define BLINKDB_LP_MILP_H_

#include <cstdint>
#include <vector>

#include "src/lp/simplex.h"

namespace blink {

// A MILP: the LP plus integrality flags (only binary {0,1} integrality is
// supported, which is all the BlinkDB formulation needs).
struct MilpProblem {
  LpProblem lp;
  std::vector<size_t> binary_vars;  // indices into lp variables
};

enum class MilpStatus { kOptimal, kInfeasible, kNodeLimit };

struct MilpSolution {
  MilpStatus status = MilpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  // Number of branch-and-bound nodes explored (for diagnostics/benchmarks).
  uint64_t nodes_explored = 0;
};

struct MilpOptions {
  uint64_t max_nodes = 200'000;
  double integrality_tol = 1e-6;
  // Prune nodes whose LP bound is within this absolute gap of the incumbent.
  double absolute_gap = 1e-9;
};

// Depth-first best-incumbent branch-and-bound. Deterministic.
MilpSolution SolveMilp(const MilpProblem& problem, const MilpOptions& options = {});

}  // namespace blink

#endif  // BLINKDB_LP_MILP_H_
