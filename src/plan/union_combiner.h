// Folds per-pipeline partial answers into the §4.1.2 union answer.
//
// The DNF rewrite splits a disjunctive query into conjunctive subqueries that
// select (nearly) disjoint row sets, so per-group: COUNT and SUM add across
// pipelines (values and variances both — the subqueries scan independent
// samples), and AVG recombines through value·count with a helper COUNT(*)
// column the planner appends to every subquery. The combination runs over
// finished per-pipeline estimates, in pipeline order, so the combined answer
// is a pure function of the per-pipeline snapshots — which is what lets the
// plan driver evaluate the joint error bound on every round without touching
// any pipeline's accumulators.
#ifndef BLINKDB_PLAN_UNION_COMBINER_H_
#define BLINKDB_PLAN_UNION_COMBINER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/sql/ast.h"

namespace blink {

class UnionCombiner {
 public:
  // Reads the aggregate shape of the original (pre-rewrite) statement.
  explicit UnionCombiner(const SelectStatement& stmt);

  // A COUNT aggregate is needed for AVG recombination; when the statement has
  // none, every subquery gets a hidden trailing COUNT(*) that Combine strips.
  bool append_count() const { return append_count_; }
  // Appends the hidden helper COUNT(*) item to a rewritten subquery.
  void PrepareSubquery(SelectStatement& sub) const;

  // Combines per-pipeline partial answers (one per disjunct, pipeline order).
  // `partials` must be non-empty and share the original statement's group and
  // aggregate shape (plus the helper count when append_count()). The
  // pointer form is what the plan driver uses: completed pipelines' frozen
  // snapshots are combined by reference on every round, never re-copied.
  QueryResult Combine(const std::vector<const QueryResult*>& partials,
                      double confidence) const;
  QueryResult Combine(const std::vector<QueryResult>& partials,
                      double confidence) const;

  // The rendered group-tuple key Combine merges rows under; two rows with the
  // same key coalesce into one combined group. Exposed so the adaptive
  // scheduler can look a combined group up in per-pipeline snapshots.
  static std::string GroupKey(const ResultRow& row);

  // Variance `row` (one pipeline's partial for some group) contributes to the
  // combined estimate of original aggregate `agg_idx`, UNNORMALIZED: the
  // variance itself for COUNT/SUM (contributions add), count^2 * variance for
  // AVG (the numerator term of the value*count recombination; the shared
  // (sum of counts)^2 denominator cancels in any cross-pipeline comparison),
  // and 0 for quantiles (never recombined). Summed over pipelines and — for
  // AVG — divided by the squared total count, this reproduces exactly the
  // combined cell's variance, which is what lets the scheduler attribute the
  // joint error across pipelines.
  double CellContribution(const ResultRow& row, size_t agg_idx) const;

 private:
  std::vector<AggFunc> agg_funcs_;  // the original aggregates, in order
  size_t count_idx_ = 0;            // column used for AVG recombination
  bool append_count_ = false;
};

}  // namespace blink

#endif  // BLINKDB_PLAN_UNION_COMBINER_H_
