#include "src/plan/scan_pipeline.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/util/thread_pool.h"

namespace blink {

using exec_internal::BindQuery;
using exec_internal::Finalize;
using exec_internal::MorselPartial;
using exec_internal::ProcessMorsel;

Status ScanPipeline::Init(PipelineSpec spec, const ExecutionOptions& exec,
                          bool may_stop_early) {
  spec_ = std::move(spec);
  exec_ = exec;
  auto bound = BindQuery(spec_.stmt, spec_.dataset, spec_.dim);
  if (!bound.ok()) {
    return bound.status();
  }
  bound_ = std::move(bound.value());
  if (!exec_.compressed_scan) {
    bound_.encoded = nullptr;  // force the raw span path
  }
  bound_.use_encoded_views = exec_.filter_encoded_views;
  plan_ = spec_.dataset.PlanMorsels(exec_.morsel_rows);
  stats_.block_rows = plan_.target_rows;

  if (exact()) {
    // A row prefix of an exact table is not a random sample: estimates over
    // it would be biased by the table's physical row order. Never stop early.
    spec_.max_blocks = 0;
    may_stop_early = false;
  }
  // Prefix stratum counts are only meaningful (and only needed) on samples
  // whose scan may end before the last block.
  track_prefix_ = may_stop_early && !exact();

  // No stop may end this pipeline before the smallest resolution's prefix
  // boundary: it is the first row prefix guaranteed to contain rows of every
  // stratum, so stopping inside it could silently drop whole strata.
  const uint64_t n = spec_.dataset.NumRows();
  if (spec_.dataset.prefix_boundaries != nullptr) {
    for (uint64_t boundary : *spec_.dataset.prefix_boundaries) {
      if (boundary > 0 && boundary <= n) {
        min_stop_rows_ = boundary;
        break;  // boundaries ascend: the first in range is the smallest
      }
    }
  }
  if (min_stop_rows_ > 0) {
    min_stop_blocks_ = CountMorsels(min_stop_rows_, plan_.target_rows,
                                    spec_.dataset.prefix_boundaries);
  }
  if (spec_.max_blocks > 0 && min_stop_blocks_ > 0) {
    // The floor applies to block budgets too: the smallest resolution is the
    // minimum statistically meaningful answer, so a budget below it floors
    // there rather than silently dropping whole strata.
    spec_.max_blocks = std::max(spec_.max_blocks, min_stop_blocks_);
  }

  const size_t workers = std::max<size_t>(
      1, std::min<size_t>(exec_.num_threads, static_cast<size_t>(std::max<uint64_t>(
                                                 1, blocks_total()))));
  scratches_.resize(workers);

  if (spec_.resume != nullptr) {
    const PipelineSnapshot& snap = *spec_.resume;
    if (precomputed() || exact()) {
      return Status::InvalidArgument(
          "resume snapshots apply only to streamed sample scans");
    }
    if (snap.rows_total != n || snap.morsel_rows != exec_.morsel_rows) {
      return Status::InvalidArgument(
          "resume snapshot was taken over a different scan decomposition");
    }
    if (snap.consumed > blocks_total()) {
      return Status::InvalidArgument("resume snapshot exceeds the block plan");
    }
    if (track_prefix_ && !snap.track_prefix && snap.consumed != blocks_total()) {
      // A never-stop scan keeps no n_h(prefix) tallies; its partial state
      // cannot seed a scan that may stop early — unless it is complete, in
      // which case finalization uses the dataset's own counts anyway.
      return Status::InvalidArgument("resume snapshot lacks prefix tallies");
    }
    groups_ = snap.groups;
    stats_ = snap.stats;
    stats_.block_rows = plan_.target_rows;
    prefix_scanned_ = snap.prefix_scanned;
    consumed_ = snap.consumed;
    bytes_decoded_ = snap.bytes_decoded;
  }
  return Status::Ok();
}

std::shared_ptr<const PipelineSnapshot> ScanPipeline::ExportState() const {
  if (precomputed() || exact()) {
    return nullptr;
  }
  auto snap = std::make_shared<PipelineSnapshot>();
  snap->consumed = consumed_;
  snap->rows_consumed = rows_consumed();
  snap->rows_total = rows_total();
  snap->morsel_rows = exec_.morsel_rows;
  snap->track_prefix = track_prefix_;
  snap->groups = groups_;
  snap->stats = stats_;
  snap->prefix_scanned = prefix_scanned_;
  snap->bytes_scanned = bytes_scanned();
  snap->bytes_decoded = bytes_decoded_;
  return snap;
}

void ScanPipeline::Advance(uint64_t blocks) {
  if (complete() || blocks == 0) {
    return;
  }
  uint64_t end = std::min(consumed_ + blocks, blocks_total());
  if (spec_.max_blocks > 0) {
    end = std::min(end, spec_.max_blocks);
  }
  if (end <= consumed_) {
    // Unreachable today: complete() already bounds consumed_ by both
    // blocks_total() and max_blocks, and Init fixes max_blocks for good. The
    // guard makes the invariant local — a budget shrunk between rounds
    // degrades to a no-op instead of underflowing `count` below.
    return;
  }
  const size_t count = static_cast<size_t>(end - consumed_);
  std::vector<MorselPartial> partials(count);
  const size_t batch_workers = std::min(scratches_.size(), count);
  if (batch_workers <= 1) {
    for (size_t i = 0; i < count; ++i) {
      ProcessMorsel(bound_, spec_.dataset, plan_.morsels[consumed_ + i], scratches_[0],
                    partials[i], track_prefix_);
    }
  } else {
    // Morsel-driven scheduling: workers pull block indices from a shared
    // counter; any assignment of blocks to workers yields the same partials.
    std::atomic<size_t> next{0};
    std::atomic<size_t> slot{0};
    auto work = [&] {
      exec_internal::WorkerScratch& scratch = scratches_[slot.fetch_add(1)];
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= count) {
          return;
        }
        ProcessMorsel(bound_, spec_.dataset, plan_.morsels[consumed_ + i], scratch,
                      partials[i], track_prefix_);
      }
    };
    if (exec_.pool != nullptr) {
      for (size_t w = 0; w < batch_workers; ++w) {
        exec_.pool->Submit(work);
      }
      exec_.pool->Wait();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(batch_workers - 1);
      for (size_t w = 0; w + 1 < batch_workers; ++w) {
        threads.emplace_back(work);
      }
      work();
      for (auto& t : threads) {
        t.join();
      }
    }
  }
  for (const MorselPartial& partial : partials) {
    bytes_decoded_ += partial.bytes_decoded;
  }
  MergePartials(partials, bound_.aggs.size(), groups_, stats_,
                track_prefix_ ? &prefix_scanned_ : nullptr);
  consumed_ = end;
}

double ScanPipeline::bytes_decoded() const {
  if (precomputed()) {
    return 0.0;  // §4.4 reuse: the probe already paid for these blocks
  }
  return bytes_decoded_;
}

double ScanPipeline::bytes_scanned() const {
  if (precomputed()) {
    return 0.0;
  }
  if (bound_.encoded == nullptr) {
    // Raw storage: what the scan reads is exactly the logical column data.
    return bytes_decoded();
  }
  double total = 0.0;
  const uint64_t rows = rows_consumed();
  for (size_t col : bound_.fact_cols) {
    total += static_cast<double>(bound_.encoded->EncodedBytesInPrefix(col, rows));
  }
  return total;
}

Result<QueryResult> ScanPipeline::Snapshot() const {
  if (precomputed()) {
    return *spec_.precomputed;
  }
  // Finalize is read-only, so snapshots share the running accumulators. A
  // scan that consumed everything finalizes against the dataset's own counts
  // — the prefix tallies equal them, but using the dataset's keeps the
  // one-shot equivalence exact by construction.
  const bool whole = consumed_ == blocks_total();
  ScanStats stats = stats_;
  stats.rows_scanned = rows_consumed();
  stats.blocks_scanned = consumed_;
  // One accounting: the same per-column sum bytes_scanned() reports
  // everywhere else (encoded bytes on compressed storage, logical bytes on
  // raw), so PARTIAL/FINAL frames agree with StreamProgress.
  stats.bytes_scanned = bytes_scanned();
  return Finalize(spec_.stmt, spec_.dataset, bound_, groups_, stats,
                  whole || !track_prefix_ ? nullptr : &prefix_scanned_);
}

}  // namespace blink
