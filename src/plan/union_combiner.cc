#include "src/plan/union_combiner.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

namespace blink {

UnionCombiner::UnionCombiner(const SelectStatement& stmt) {
  int count_pos = -1;
  size_t num_orig_aggs = 0;
  for (const auto& item : stmt.items) {
    if (item.is_aggregate) {
      if (item.agg.func == AggFunc::kCount && count_pos < 0) {
        count_pos = static_cast<int>(num_orig_aggs);
      }
      agg_funcs_.push_back(item.agg.func);
      ++num_orig_aggs;
    }
  }
  append_count_ = count_pos < 0;
  count_idx_ = append_count_ ? num_orig_aggs : static_cast<size_t>(count_pos);
}

void UnionCombiner::PrepareSubquery(SelectStatement& sub) const {
  if (!append_count_) {
    return;
  }
  SelectItem count_item;
  count_item.is_aggregate = true;
  count_item.agg.count_star = true;
  count_item.agg.func = AggFunc::kCount;
  count_item.alias = "__blink_count";
  sub.items.push_back(count_item);
}

std::string UnionCombiner::GroupKey(const ResultRow& row) {
  std::string key;
  for (const auto& v : row.group_values) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

double UnionCombiner::CellContribution(const ResultRow& row, size_t agg_idx) const {
  if (agg_idx >= agg_funcs_.size() || agg_idx >= row.aggregates.size()) {
    return 0.0;
  }
  const Estimate& est = row.aggregates[agg_idx];
  switch (agg_funcs_[agg_idx]) {
    case AggFunc::kCount:
    case AggFunc::kSum:
      return est.variance;
    case AggFunc::kAvg: {
      const double count =
          count_idx_ < row.aggregates.size() ? row.aggregates[count_idx_].value : 0.0;
      return count * count * est.variance;
    }
    case AggFunc::kQuantile:
      return 0.0;
  }
  return 0.0;
}

QueryResult UnionCombiner::Combine(const std::vector<QueryResult>& partials,
                                   double confidence) const {
  std::vector<const QueryResult*> refs;
  refs.reserve(partials.size());
  for (const auto& partial : partials) {
    refs.push_back(&partial);
  }
  return Combine(refs, confidence);
}

QueryResult UnionCombiner::Combine(const std::vector<const QueryResult*>& partials,
                                   double confidence) const {
  // Merge groups across partial results. The map key is the rendered group
  // tuple, so groups surfaced by different pipelines coalesce; the emitted
  // rows are sorted by the same rendering, which fixes the output order
  // independently of which pipeline saw a group first.
  struct Combined {
    std::vector<Value> group_values;
    std::vector<Estimate> sums;        // per original aggregate: accumulated
    std::vector<double> weighted_num;  // for AVG: sum of value*count
    std::vector<double> total_count;   // for AVG: sum of counts
  };
  std::map<std::string, Combined> merged;
  for (const QueryResult* partial : partials) {
    for (const auto& row : partial->rows) {
      Combined& c = merged[GroupKey(row)];
      if (c.sums.empty()) {
        c.group_values = row.group_values;
        c.sums.resize(agg_funcs_.size());
        c.weighted_num.assign(agg_funcs_.size(), 0.0);
        c.total_count.assign(agg_funcs_.size(), 0.0);
      }
      const double count_value =
          count_idx_ < row.aggregates.size() ? row.aggregates[count_idx_].value : 0.0;
      for (size_t a = 0; a < agg_funcs_.size(); ++a) {
        const Estimate& est = row.aggregates[a];
        switch (agg_funcs_[a]) {
          case AggFunc::kCount:
          case AggFunc::kSum:
            c.sums[a].value += est.value;
            c.sums[a].variance += est.variance;
            break;
          case AggFunc::kAvg:
            c.weighted_num[a] += est.value * count_value;
            c.total_count[a] += count_value;
            // Approximate numerator variance: count^2 * var(avg).
            c.sums[a].variance += count_value * count_value * est.variance;
            break;
          case AggFunc::kQuantile:
            // Quantiles cannot be recombined across disjuncts; the planner
            // never routes them through a union plan.
            break;
        }
      }
    }
  }

  QueryResult combined;
  combined.group_names = partials.front()->group_names;
  combined.aggregate_names.assign(partials.front()->aggregate_names.begin(),
                                  partials.front()->aggregate_names.begin() +
                                      static_cast<long>(agg_funcs_.size()));
  combined.confidence = confidence;
  for (auto& [key, c] : merged) {
    (void)key;
    ResultRow row;
    row.group_values = std::move(c.group_values);
    for (size_t a = 0; a < agg_funcs_.size(); ++a) {
      Estimate est = c.sums[a];
      if (agg_funcs_[a] == AggFunc::kAvg) {
        const double total = std::max(1e-300, c.total_count[a]);
        est.value = c.weighted_num[a] / total;
        est.variance = c.sums[a].variance / (total * total);
      }
      row.aggregates.push_back(est);
    }
    combined.rows.push_back(std::move(row));
  }
  std::sort(combined.rows.begin(), combined.rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              for (size_t i = 0; i < a.group_values.size() && i < b.group_values.size();
                   ++i) {
                const std::string sa = a.group_values[i].ToString();
                const std::string sb = b.group_values[i].ToString();
                if (sa != sb) {
                  return sa < sb;
                }
              }
              return false;
            });
  return combined;
}

}  // namespace blink
