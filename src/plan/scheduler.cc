#include "src/plan/scheduler.h"

#include <utility>

#include "src/exec/incremental.h"

namespace blink {

const char* ScheduleModeName(ScheduleMode mode) {
  switch (mode) {
    case ScheduleMode::kUniform:
      return "uniform";
    case ScheduleMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::vector<double> AttributeJointError(const UnionCombiner& combiner,
                                        const QueryResult& combined,
                                        const std::vector<const QueryResult*>& parts,
                                        bool relative, double confidence) {
  std::vector<double> contributions(parts.size(), 0.0);
  if (combined.rows.empty()) {
    return contributions;
  }
  // Combined rows all share the original aggregate shape, so the flattened
  // estimate index maps back to (row, aggregate) by division.
  const size_t num_aggs = combined.rows.front().aggregates.size();
  if (num_aggs == 0) {
    return contributions;
  }
  const size_t idx =
      DominatingEstimate(FlattenEstimates(combined), relative, confidence);
  if (idx >= combined.rows.size() * num_aggs) {
    return contributions;  // every error is zero: nothing dominates
  }
  const size_t agg = idx % num_aggs;
  const std::string key = UnionCombiner::GroupKey(combined.rows[idx / num_aggs]);
  for (size_t i = 0; i < parts.size(); ++i) {
    for (const auto& row : parts[i]->rows) {
      if (UnionCombiner::GroupKey(row) == key) {
        contributions[i] = combiner.CellContribution(row, agg);
        break;
      }
    }
  }
  return contributions;
}

PipelineScheduler::PipelineScheduler(ScheduleMode mode, const UnionCombiner* combiner,
                                     const StopPolicy& policy, uint64_t budget_pool,
                                     std::vector<uint64_t> round_shares)
    : mode_(mode),
      combiner_(combiner),
      policy_(policy),
      pool_(budget_pool),
      shares_(std::move(round_shares)),
      rounds_(shares_.size(), 0) {}

bool PipelineScheduler::Seeded(const ScanPipeline& pipe) const {
  return pipe.complete() ||
         (pipe.CanErrorStop() && pipe.blocks_consumed() >= policy_.min_blocks &&
          static_cast<double>(pipe.rows_matched()) >= policy_.min_matched);
}

std::vector<ScheduleGrant> PipelineScheduler::UniformRound(
    const std::vector<std::unique_ptr<ScanPipeline>>& pipes) const {
  std::vector<ScheduleGrant> grants;
  uint64_t remaining = pool_remaining();
  for (size_t i = 0; i < pipes.size(); ++i) {
    const ScanPipeline& pipe = *pipes[i];
    if (pipe.complete()) {
      continue;
    }
    uint64_t grant = shares_[i];
    // Sample pipelines past their smallest-resolution floor draw from the
    // pool; below the floor a grant may overdraw it, but only up to the
    // floor itself (the budget floors there, mirroring ScanPipeline::Init
    // — never a whole batch past the boundary). Exact scans ignore the pool.
    if (pooled() && !pipe.exact()) {
      if (pipe.CanErrorStop()) {
        grant = std::min(grant, remaining);
      } else {
        const uint64_t floor_blocks = pipe.min_stop_blocks();
        const uint64_t to_floor = floor_blocks > pipe.blocks_consumed()
                                      ? floor_blocks - pipe.blocks_consumed()
                                      : 1;
        grant = std::min(grant, std::max(remaining, to_floor));
      }
      remaining -= std::min(grant, remaining);
    }
    if (grant > 0) {
      grants.push_back({i, grant});
    }
  }
  return grants;
}

std::vector<ScheduleGrant> PipelineScheduler::NextRound(
    const std::vector<std::unique_ptr<ScanPipeline>>& pipes,
    const QueryResult* combined, const std::vector<const QueryResult*>* parts) {
  bool any_incomplete = false;
  bool all_seeded = true;
  for (const auto& pipe : pipes) {
    any_incomplete = any_incomplete || !pipe->complete();
    all_seeded = all_seeded && Seeded(*pipe);
  }
  if (!any_incomplete) {
    return {};
  }
  const bool adaptive =
      mode_ == ScheduleMode::kAdaptive && combiner_ != nullptr && pipes.size() > 1;
  if (adaptive && all_seeded && combined != nullptr && parts != nullptr) {
    const std::vector<double> contributions = AttributeJointError(
        *combiner_, *combined, *parts, policy_.relative, policy_.confidence);
    // Award the round to the worst attributed contributor, discounted by the
    // marginal shrink a grant can still buy (variance contracts ~1/consumed).
    // Strict > breaks ties toward the lowest pipeline index.
    size_t best = pipes.size();
    double best_score = 0.0;
    for (size_t i = 0; i < pipes.size(); ++i) {
      const ScanPipeline& pipe = *pipes[i];
      if (pipe.complete()) {
        continue;
      }
      const bool pool_capped = pooled() && !pipe.exact() && pipe.CanErrorStop();
      if (pool_capped && pool_remaining() == 0) {
        continue;
      }
      const double grant = static_cast<double>(shares_[i]);
      const double consumed = static_cast<double>(pipe.blocks_consumed());
      const double score = contributions[i] * grant / (consumed + grant);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best < pipes.size()) {
      uint64_t grant = shares_[best];
      if (pooled() && !pipes[best]->exact() && pipes[best]->CanErrorStop()) {
        grant = std::min(grant, pool_remaining());
      }
      if (grant > 0) {
        return {{best, grant}};
      }
    }
    // No attributable contributor can advance (zero contributions, or the
    // dominating cell is fed only by complete pipelines): run uniform.
  }
  return UniformRound(pipes);
}

void PipelineScheduler::OnAdvanced(size_t pipeline, uint64_t consumed_delta,
                                   bool exact) {
  if (consumed_delta == 0) {
    return;
  }
  ++rounds_[pipeline];
  if (!exact) {
    spent_ += consumed_delta;
  }
}

bool PipelineScheduler::Stalled(
    const std::vector<std::unique_ptr<ScanPipeline>>& pipes) const {
  if (!pooled() || pool_remaining() > 0) {
    return false;
  }
  bool any_incomplete = false;
  for (const auto& pipe : pipes) {
    if (pipe->complete()) {
      continue;
    }
    if (pipe->exact() || !pipe->CanErrorStop()) {
      return false;  // still owed blocks regardless of the pool
    }
    any_incomplete = true;
  }
  return any_incomplete;
}

}  // namespace blink
