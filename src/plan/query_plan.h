// Unified physical query plans.
//
// Every query the runtime answers becomes a QueryPlan: a set of scan
// pipelines plus a combination rule. A conjunctive query is a 1-pipeline plan
// over its chosen dataset, a §4.1.2 disjunctive query is an N-pipeline plan
// with one pipeline per DNF disjunct bound to its best-covering sample, and
// the EXACT fallback is a 1-pipeline plan over the base table. One driver —
// ExecutePlan — replaces both the bespoke per-disjunct recursion and the
// conjunctive-only streaming loop: it interleaves block batches across
// pipelines in scheduler-decided rounds (src/plan/scheduler.h: a fixed
// round-robin, or error-attributed adaptive awards), folds per-pipeline
// snapshots through the union combiner, and applies the StopPolicy to the
// *joint* worst-case error of the combined answer, so an ERROR WITHIN
// disjunctive query stops the moment the union estimate meets the bound and
// a WITHIN n SECONDS query stops when its block budget — per-pipeline caps,
// or one shared pool the scheduler drains adaptively — is spent.
//
// Determinism: granted pipelines advance in index order, each consumes its
// own blocks in prefix order, and combination happens only on finished
// snapshots — so the answer is a pure function of the per-pipeline consumed
// prefix lengths, and the schedule itself is a pure function of those
// prefixes' snapshots. With the never-stop policy every pipeline consumes
// everything and the plan reproduces the one-shot answer bit-identically for
// any thread count, morsel size, batch size, pipeline interleave, and
// schedule mode.
#ifndef BLINKDB_PLAN_QUERY_PLAN_H_
#define BLINKDB_PLAN_QUERY_PLAN_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/incremental.h"
#include "src/plan/scan_pipeline.h"
#include "src/plan/scheduler.h"
#include "src/plan/union_combiner.h"
#include "src/stats/stopping.h"
#include "src/util/status.h"

namespace blink {

// A physical plan: what to scan (one spec per pipeline) and how to combine.
struct QueryPlan {
  std::vector<PipelineSpec> pipelines;
  // Union combination rule; required when pipelines.size() > 1 (a 1-pipeline
  // plan passes its only snapshot through untouched, bit-identical to the
  // plain executor).
  std::optional<UnionCombiner> combiner;
};

struct PlanOptions {
  ExecutionOptions exec;
  // Blocks each pipeline consumes per round-robin turn (the joint
  // stopping-rule cadence). 0 = each pipeline runs as one batch — the
  // one-shot fast path when the policy never stops and no callback is set.
  uint32_t batch_blocks = 0;
  // Joint stopping rule, evaluated on the combined answer after every round.
  // Its error guards (min_blocks / min_matched) read totals across all
  // pipelines. StopPolicy::max_blocks is a JOINT cap: it folds into
  // budget_pool (the tighter of the two wins), never silently dropped.
  // Default-constructed, the plan never stops early.
  StopPolicy policy;
  // Invoked after every round with the combined partial answer.
  ProgressCallback progress;
  // How rounds are awarded across pipelines (src/plan/scheduler.h).
  // kUniform reproduces the fixed round-robin block-consumption trace
  // exactly; kAdaptive awards rounds to the pipeline dominating the joint
  // error once every pipeline clears the fairness floor. Single-pipeline
  // plans (and plans that can never stop early) degenerate to uniform.
  ScheduleMode schedule = ScheduleMode::kUniform;
  // Shared block-budget pool across the plan's sample pipelines (a WITHIN n
  // SECONDS bound); 0 = none. Grants drain the pool until it is dry, with
  // every sample pipeline floored at its smallest-resolution boundary and
  // exact pipelines always running to completion. Complements (and folds
  // with) per-pipeline PipelineSpec::max_blocks caps.
  uint64_t budget_pool = 0;
  // Cooperative cancellation hook. When non-null, the driver checks the flag
  // at every round boundary; once it reads true, no further blocks are
  // scanned and the plan returns the combined partial answer over the
  // consumed prefixes with PlanResult::cancelled set — exactly the shape of
  // an early stop, so §4.4 accounting downstream charges only consumed
  // blocks. Granularity is one round (batch_blocks per granted pipeline);
  // plans driven as a single maximal batch (never-stop, no progress) are not
  // interruptible mid-scan. The flag is only read, never cleared.
  const std::atomic<bool>* cancel = nullptr;
  // Export each pipeline's consumed-prefix state into PlanResult::states on
  // return, for the cross-query answer cache. Off by default: exporting
  // copies the running accumulators once per pipeline.
  bool export_state = false;
};

// Per-pipeline outcome, for the runtime's §4.4/latency accounting and the
// scheduling diagnostics surfaced through ExecutionReport.
struct PipelineOutcome {
  uint64_t blocks_total = 0;
  uint64_t blocks_consumed = 0;
  uint64_t rows_consumed = 0;
  uint64_t rows_matched = 0;
  // Storage bytes the scan read (encoded bytes of the consumed blocks'
  // touched columns on compressed tables) and the logical bytes those blocks
  // decoded to. Equal on raw storage; their ratio is the realized compression
  // win. 0 for reused probes, which scan nothing.
  double bytes_scanned = 0.0;
  double bytes_decoded = 0.0;
  bool reused_probe = false;  // §4.4: nothing was scanned, the probe answered
  // Rounds in which the scheduler granted this pipeline blocks (floor rounds
  // included); 0 for precomputed pipelines, which never advance.
  uint64_t scheduled_rounds = 0;
  // This pipeline's normalized share of the joint error at return: its
  // fraction of the dominating cell's variance, attributed through the union
  // combiner's recombination rule. Shares sum to 1 across pipelines when a
  // cell dominates; all 0 for single-pipeline plans, plans that could never
  // stop, exact answers, and drives that never materialized per-round
  // partials (a bare uniform budget with no error target or progress).
  double error_contribution = 0.0;
  // Distributed execution only (src/coord/): the shard behind this pipeline
  // failed or stalled mid-query and was finalized at its last valid consumed
  // prefix, so the combined answer carries a wider CI than a fault-free run
  // would. Always false for in-process plans.
  bool degraded = false;
};

struct PlanResult {
  QueryResult result;  // the combined answer
  std::vector<PipelineOutcome> pipelines;
  uint64_t blocks_consumed = 0;  // totals across pipelines
  uint64_t blocks_total = 0;
  uint64_t rows_consumed = 0;
  bool stopped_early = false;  // some pipeline returned before its last block
  bool bound_met = false;      // the error target was met at return
  // PlanOptions::cancel fired: the drive was abandoned at a round boundary
  // and `result` is the partial answer over the consumed prefixes.
  bool cancelled = false;
  // Worst error of `result` at the policy confidence (max over
  // groups/aggregates), computed whenever a stop was possible.
  double achieved_error = 0.0;
  // One entry per pipeline when PlanOptions::export_state was set (empty
  // otherwise); null entries for pipelines with nothing to export
  // (precomputed / exact — see ScanPipeline::ExportState).
  std::vector<std::shared_ptr<const PipelineSnapshot>> states;
};

// Drives `plan` to completion (or to a joint stop). Pipelines are
// materialized, advanced round-robin, snapshotted, combined, and evaluated
// against the joint policy.
Result<PlanResult> ExecutePlan(const QueryPlan& plan, const PlanOptions& options);

}  // namespace blink

#endif  // BLINKDB_PLAN_QUERY_PLAN_H_
