// Error-attribution-driven scheduling of plan pipelines.
//
// The plan driver (src/plan/query_plan.h) consumes blocks in rounds; this
// module decides, each round, which pipelines advance and by how many blocks.
// Two modes:
//
//  - kUniform reproduces the fixed round-robin the driver always used: every
//    incomplete pipeline advances its round share each round, in index order.
//  - kAdaptive exploits the structure of the joint §4.1.2 union error: the
//    combined answer's worst cell has variance equal to a sum of per-pipeline
//    contributions (COUNT/SUM variances add; AVG recombines through
//    value*count), so blocks granted to a pipeline whose contribution is
//    already small barely move the joint error. Past a fairness floor, the
//    scheduler awards each round's batch to the single pipeline whose
//    attributed contribution to the dominating cell — discounted by the
//    marginal shrink the batch can still buy, contribution * grant /
//    (consumed + grant), since a pipeline's variance contracts like
//    1/consumed — is largest. Greedily equalizing these marginal scores
//    converges to the Neyman-style allocation (consumed_i proportional to the
//    contribution scale), which uniform round-robin cannot reach.
//
// Determinism: every decision is a pure function of the pipelines'
// consumed-prefix snapshots (themselves pure functions of prefix lengths) and
// fixed configuration — never of wall clock or thread timing. Ties break
// toward the lowest pipeline index. Under a never-stop policy the schedule
// cannot affect the answer at all: every pipeline consumes everything and the
// final combine sees identical snapshots in either mode.
//
// Fairness floor: before any adaptive award, every incomplete pipeline must
// clear the stop policy's guards on its own — min_blocks consumed, min_matched
// rows matched, and past its smallest-resolution boundary (CanErrorStop) — so
// attribution is computed from statistically meaningful snapshots and no
// pipeline is starved into a noise-dominated estimate. Until the floor clears,
// rounds stay uniform.
//
// Shared block-budget pool: a WITHIN n SECONDS union plan carries one pool of
// blocks (what the time window affords the union as a whole) instead of
// static per-pipeline budgets. Grants drain the pool; sample pipelines that
// have not yet reached their smallest-resolution boundary may overdraw it,
// but only up to that boundary — exactly the flooring ScanPipeline::Init
// applies to per-pipeline budgets, never a whole batch past it. Exact
// pipelines neither charge nor respect the pool — a prefix of an unshuffled
// table is not a sample, so an exact scan always runs to completion.
#ifndef BLINKDB_PLAN_SCHEDULER_H_
#define BLINKDB_PLAN_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/exec/executor.h"
#include "src/plan/scan_pipeline.h"
#include "src/plan/union_combiner.h"
#include "src/stats/stopping.h"

namespace blink {

enum class ScheduleMode { kUniform, kAdaptive };

const char* ScheduleModeName(ScheduleMode mode);

// Per-pipeline UNNORMALIZED variance contributions to the dominating cell of
// the combined answer: finds the (group, aggregate) cell whose error
// dominates MaxEstimateError over `combined`, then attributes that cell's
// variance across `parts` via the combiner's recombination rule
// (UnionCombiner::CellContribution). Pipelines whose snapshot lacks the
// dominating group contribute 0. Returns an all-zero vector when no cell
// dominates (every error is zero). `parts` must be the per-pipeline snapshots
// `combined` was combined from, in pipeline order.
std::vector<double> AttributeJointError(const UnionCombiner& combiner,
                                        const QueryResult& combined,
                                        const std::vector<const QueryResult*>& parts,
                                        bool relative, double confidence);

// One pipeline's grant for the coming round.
struct ScheduleGrant {
  size_t pipeline = 0;
  uint64_t blocks = 0;
};

class PipelineScheduler {
 public:
  // `combiner` may be null (single-pipeline plans have none); adaptive mode
  // degenerates to uniform without one. `budget_pool` of 0 means no pool.
  // `round_shares[i]` is pipeline i's fixed per-round block share.
  PipelineScheduler(ScheduleMode mode, const UnionCombiner* combiner,
                    const StopPolicy& policy, uint64_t budget_pool,
                    std::vector<uint64_t> round_shares);

  // Grants for the next round — a pure function of the pipelines' current
  // consumed-prefix state plus, for adaptive awards, the previous round's
  // combined answer and per-pipeline snapshots (null on the first round,
  // which is always uniform). Returns an empty vector when nothing can
  // advance: every pipeline complete, or the pool is dry and every sample
  // pipeline is past its floor.
  std::vector<ScheduleGrant> NextRound(
      const std::vector<std::unique_ptr<ScanPipeline>>& pipes,
      const QueryResult* combined, const std::vector<const QueryResult*>* parts);

  // Driver callback after advancing a granted pipeline: charges the consumed
  // delta against the pool (sample pipelines only) and tallies the round.
  void OnAdvanced(size_t pipeline, uint64_t consumed_delta, bool exact);

  // True when no further grant is possible even though pipelines remain
  // incomplete: the pool is dry, and every incomplete pipeline is a sample
  // past its smallest-resolution floor. The driver returns (a budget stop)
  // instead of idling.
  bool Stalled(const std::vector<std::unique_ptr<ScanPipeline>>& pipes) const;

  bool pooled() const { return pool_ > 0; }
  uint64_t pool_remaining() const { return spent_ >= pool_ ? 0 : pool_ - spent_; }
  // Rounds in which pipeline i received (and consumed) a nonzero grant.
  uint64_t rounds(size_t pipeline) const { return rounds_[pipeline]; }

 private:
  // The fairness floor: a pipeline is seeded once its own snapshot clears the
  // policy guards (or it has nothing left to scan).
  bool Seeded(const ScanPipeline& pipe) const;
  std::vector<ScheduleGrant> UniformRound(
      const std::vector<std::unique_ptr<ScanPipeline>>& pipes) const;

  ScheduleMode mode_;
  const UnionCombiner* combiner_;
  StopPolicy policy_;
  uint64_t pool_ = 0;
  uint64_t spent_ = 0;
  std::vector<uint64_t> shares_;
  std::vector<uint64_t> rounds_;
};

}  // namespace blink

#endif  // BLINKDB_PLAN_SCHEDULER_H_
