// One pipeline of a physical query plan: the incremental scan state of a
// single conjunctive subquery bound to the dataset the planner chose for it
// (a sample resolution or the exact base table).
//
// A pipeline is the §4.1.2 unit of execution: a disjunctive query becomes one
// pipeline per DNF disjunct, a conjunctive query is a 1-pipeline plan. The
// plan driver (src/plan/query_plan.h) advances pipelines batch-by-batch in a
// deterministic round-robin; each pipeline consumes its own blocks in prefix
// order and folds per-block partials strictly in block-index order, so a
// pipeline's running accumulators — and therefore any snapshot taken from
// them — depend only on how many blocks it has consumed, never on the thread
// count, the schedule, or how its batches interleave with other pipelines'.
#ifndef BLINKDB_PLAN_SCAN_PIPELINE_H_
#define BLINKDB_PLAN_SCAN_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/exec/aggregation.h"
#include "src/exec/dataset.h"
#include "src/exec/executor.h"
#include "src/sql/ast.h"
#include "src/util/status.h"

namespace blink {

// The consumed-prefix state of one pipeline, exported for cross-query reuse
// (the answer cache, generalizing §4.4 reuse across queries). Because the
// running accumulators depend only on the consumed block count — never on
// threads or schedule — restoring a snapshot and advancing is bit-identical
// to a cold scan that consumed the same prefix. Plain values, freely
// copyable; shared immutably via shared_ptr once exported.
struct PipelineSnapshot {
  uint64_t consumed = 0;       // blocks of the prefix the state covers
  uint64_t rows_consumed = 0;  // rows of that prefix (reuse accounting)
  uint64_t rows_total = 0;     // dataset rows when taken (decomposition guard)
  uint32_t morsel_rows = 0;    // requested morsel size (decomposition guard)
  bool track_prefix = false;   // whether prefix_scanned tallies were kept
  exec_internal::GroupMap groups;
  ScanStats stats;
  std::vector<double> prefix_scanned;  // n_h(prefix) per stratum
  double bytes_scanned = 0.0;  // storage bytes the prefix read
  double bytes_decoded = 0.0;  // logical bytes the prefix materialized
};

// What one pipeline scans and how far it is allowed to go.
struct PipelineSpec {
  // Conjunctive sub-statement (the union path appends a helper COUNT(*) for
  // AVG recombination before constructing the spec).
  SelectStatement stmt;
  Dataset dataset;
  const Table* dim = nullptr;
  // Hard cap on blocks this pipeline may consume (a time bound's per-pipeline
  // block budget); 0 = none. Init floors it at the smallest-resolution
  // boundary and clears it for exact datasets (which never stop early).
  uint64_t max_blocks = 0;
  // §4.4 probe reuse: when set, the pipeline is born complete with this
  // answer (the planner's escalated probe already scanned exactly this
  // dataset) — the driver never advances it and snapshots return the value.
  std::optional<QueryResult> precomputed;
  // Cross-query resume: when set, Init seeds the pipeline with this
  // consumed-prefix state instead of starting at block 0, and the scan
  // streams on from there. The snapshot must have been exported from a
  // pipeline over the same dataset decomposition (same rows, same morsel
  // size); Init rejects mismatches. Mutually exclusive with `precomputed`
  // and with exact datasets.
  std::shared_ptr<const PipelineSnapshot> resume;
};

class ScanPipeline {
 public:
  ScanPipeline() = default;
  ScanPipeline(const ScanPipeline&) = delete;
  ScanPipeline& operator=(const ScanPipeline&) = delete;

  // Binds the spec's statement against its dataset and plans the block
  // decomposition. `may_stop_early` tells the pipeline whether any stop
  // (error or budget) can end its scan before the last block: only then are
  // per-stratum prefix counts n_h(prefix) tallied, which is what makes a
  // stopped prefix finalize as a valid stratified sample.
  Status Init(PipelineSpec spec, const ExecutionOptions& exec, bool may_stop_early);

  // Scans up to `blocks` further blocks (clamped to the budget and the plan)
  // in parallel and folds their partials into the running accumulators in
  // block-index order. No-op once complete.
  void Advance(uint64_t blocks);

  // Finalizes the running accumulators over the consumed prefix. Complete
  // scans finalize against the dataset's own counts (bit-identical to the
  // one-shot executor by construction); stopped prefixes finalize against the
  // tallied n_h(prefix).
  Result<QueryResult> Snapshot() const;

  // Exports the consumed-prefix state for cross-query reuse via
  // PipelineSpec::resume. Null for precomputed (§4.4 probe reuse carries its
  // own answer) and exact pipelines (prefixes of unshuffled tables are not
  // resumable samples). The returned state is an independent copy.
  std::shared_ptr<const PipelineSnapshot> ExportState() const;

  // The scan has nothing left to do: every block consumed, the block budget
  // exhausted, or a precomputed (§4.4) answer stands in for the scan.
  bool complete() const {
    return precomputed() || consumed_ == blocks_total() ||
           (spec_.max_blocks > 0 && consumed_ >= spec_.max_blocks);
  }
  // The whole dataset was consumed (or its answer reused); false for budget
  // stops.
  bool exhausted() const { return precomputed() || consumed_ == blocks_total(); }
  bool precomputed() const { return spec_.precomputed.has_value(); }
  bool exact() const { return spec_.dataset.is_exact(); }

  // An error stop may end the plan only when every pipeline's consumed prefix
  // is statistically sound: past the smallest-resolution boundary (the first
  // prefix guaranteed to hold rows of every stratum) for samples, and fully
  // consumed for exact datasets (a prefix of an unshuffled table is not a
  // random sample).
  bool CanErrorStop() const {
    return exact() ? complete() : rows_consumed() >= min_stop_rows_;
  }

  // Blocks of the smallest-resolution floor: the shortest block prefix whose
  // rows satisfy CanErrorStop (0 when the dataset has no boundaries). A
  // shared budget pool may be overdrawn up to this floor, never past it.
  uint64_t min_stop_blocks() const { return min_stop_blocks_; }

  uint64_t blocks_total() const { return plan_.num_blocks(); }
  uint64_t blocks_consumed() const {
    return precomputed() ? blocks_total() : consumed_;
  }
  uint64_t rows_total() const { return spec_.dataset.NumRows(); }
  uint64_t rows_consumed() const {
    if (precomputed()) {
      return rows_total();
    }
    return consumed_ == 0 ? 0 : plan_.morsels[consumed_ - 1].end;
  }
  uint64_t rows_matched() const {
    return precomputed() ? spec_.precomputed->stats.rows_matched
                         : stats_.rows_matched;
  }

  // Storage-layer accounting over the consumed prefix, charged per whole
  // block like every other block cost. bytes_scanned is what the scan read
  // from storage (encoded bytes on compressed tables); bytes_decoded is the
  // logical bytes the scan actually materialized — equal to rows × width of
  // the touched columns on raw storage, smaller on compressed scans whose
  // filter-only columns stay encoded. Precomputed (§4.4 reuse) pipelines
  // charge nothing. Snapshot() reports the same bytes_scanned value, so
  // PARTIAL/FINAL frames and this accessor can never disagree.
  double bytes_scanned() const;
  double bytes_decoded() const;

  const PipelineSpec& spec() const { return spec_; }

 private:
  PipelineSpec spec_;
  ExecutionOptions exec_;
  exec_internal::BoundQuery bound_;
  MorselPlan plan_;
  exec_internal::GroupMap groups_;
  ScanStats stats_;
  std::vector<double> prefix_scanned_;  // consumed rows per stratum
  std::vector<exec_internal::WorkerScratch> scratches_;
  uint64_t consumed_ = 0;
  uint64_t min_stop_rows_ = 0;
  uint64_t min_stop_blocks_ = 0;
  bool track_prefix_ = false;
  double bytes_decoded_ = 0.0;  // logical bytes materialized so far
};

}  // namespace blink

#endif  // BLINKDB_PLAN_SCAN_PIPELINE_H_
