#include "src/plan/query_plan.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace blink {
namespace {

// Aggregate progress over the whole plan (all pipelines).
StreamProgress ProgressOver(const std::vector<std::unique_ptr<ScanPipeline>>& pipes,
                            const StopPolicy::Decision& decision, bool final_batch) {
  StreamProgress p;
  for (const auto& pipe : pipes) {
    p.blocks_consumed += pipe->blocks_consumed();
    p.blocks_total += pipe->blocks_total();
    p.rows_consumed += pipe->rows_consumed();
    p.rows_total += pipe->rows_total();
    p.bytes_scanned += pipe->bytes_scanned();
    p.bytes_decoded += pipe->bytes_decoded();
  }
  p.achieved_error = decision.achieved_error;
  p.bound_met = decision.bound_met;
  p.final_batch = final_batch;
  return p;
}

}  // namespace

Result<PlanResult> ExecutePlan(const QueryPlan& plan, const PlanOptions& options) {
  if (plan.pipelines.empty()) {
    return Status::InvalidArgument("plan has no pipelines");
  }
  if (plan.pipelines.size() > 1 && !plan.combiner.has_value()) {
    return Status::InvalidArgument("multi-pipeline plan has no union combiner");
  }

  StopPolicy policy = options.policy;
  uint64_t pool = options.budget_pool;
  if (policy.max_blocks > 0) {
    // StopPolicy::max_blocks is a joint cap across pipelines: fold it into
    // the shared pool (the tighter budget wins) instead of dropping it.
    pool = pool == 0 ? policy.max_blocks : std::min(pool, policy.max_blocks);
    policy.max_blocks = 0;
  }

  // An error stop is only meaningful when some pipeline scans a sample; a
  // plan made purely of exact scans (the EXACT fallback) never stops early.
  bool any_sample = false;
  bool any_budget = false;
  for (const auto& spec : plan.pipelines) {
    any_sample = any_sample || !spec.dataset.is_exact();
    any_budget = any_budget || (!spec.dataset.is_exact() && spec.max_blocks > 0);
  }
  any_budget = any_budget || (pool > 0 && any_sample);
  const bool error_stopping = policy.target_error > 0.0 && any_sample;
  // Stops the driver itself may take (error bound met, budget spent) versus
  // an externally requested cancel. Both can end a scan on a partial prefix,
  // so both require the per-stratum prefix tallies that make a stopped
  // prefix finalize as a valid stratified sample.
  const bool stop_rules = error_stopping || any_budget;
  const bool cancellable = options.cancel != nullptr;
  const bool may_stop_early = stop_rules || cancellable;
  // Adaptive awards only matter when there is more than one pipeline to
  // choose between and some stop can actually end the plan early; a merely
  // cancellable plan keeps the uniform round-robin (cancellation should not
  // perturb the schedule of a plan that would otherwise run to completion).
  const bool adaptive = options.schedule == ScheduleMode::kAdaptive &&
                        plan.pipelines.size() > 1 && plan.combiner.has_value() &&
                        stop_rules;
  // Combined partial answers must be materialized between rounds for the
  // joint error rule, for progress callbacks, and for adaptive attribution;
  // bare uniform budgets only need the final snapshots, so they skip the
  // per-round re-finalization entirely.
  const bool needs_partials =
      error_stopping || options.progress != nullptr || adaptive;

  std::vector<std::unique_ptr<ScanPipeline>> pipes;
  pipes.reserve(plan.pipelines.size());
  for (const auto& spec : plan.pipelines) {
    auto pipe = std::make_unique<ScanPipeline>();
    BLINK_RETURN_IF_ERROR(pipe->Init(spec, options.exec, may_stop_early));
    pipes.push_back(std::move(pipe));
  }

  // Per-pipeline round share: at least one batch's worth of work per worker
  // so every round saturates the thread fan-out. 0 (or no partials needed)
  // drives each pipeline in one maximal batch — a pool still clamps such a
  // grant to exactly the remaining budget (floored at the smallest
  // resolution), so bounded rounds are never needed just to meet a budget.
  std::vector<uint64_t> shares;
  shares.reserve(pipes.size());
  for (const auto& pipe : pipes) {
    if (!needs_partials || options.batch_blocks == 0) {
      shares.push_back(pipe->blocks_total());
      continue;
    }
    const uint64_t workers = std::max<uint64_t>(
        1, std::min<uint64_t>(options.exec.num_threads, pipe->blocks_total()));
    shares.push_back(std::max<uint64_t>(options.batch_blocks, workers));
  }
  PipelineScheduler scheduler(adaptive ? ScheduleMode::kAdaptive
                                       : ScheduleMode::kUniform,
                              plan.combiner.has_value() ? &*plan.combiner : nullptr,
                              policy, pool, std::move(shares));

  // A pipeline's snapshot is a pure function of its consumed prefix, so
  // snapshots are cached keyed on the consumed block count: each round only
  // the pipelines the scheduler actually advanced re-finalize (an adaptive
  // round advances one), and completed pipelines are combined by reference
  // forever after, never re-copied.
  std::vector<std::optional<QueryResult>> cached(pipes.size());
  std::vector<uint64_t> cached_consumed(pipes.size(), UINT64_MAX);
  auto snapshot_all = [&]() -> Result<std::vector<const QueryResult*>> {
    std::vector<const QueryResult*> parts;
    parts.reserve(pipes.size());
    for (size_t i = 0; i < pipes.size(); ++i) {
      if (!cached[i].has_value() || cached_consumed[i] != pipes[i]->blocks_consumed()) {
        auto snap = pipes[i]->Snapshot();
        if (!snap.ok()) {
          return snap.status();
        }
        cached[i] = std::move(snap.value());
        cached_consumed[i] = pipes[i]->blocks_consumed();
      }
      parts.push_back(&*cached[i]);
    }
    return parts;
  };
  // The combined answer of the current round. A 1-pipeline plan hands its
  // only snapshot through untouched; moving out of the cache is safe because
  // the entry is invalidated, so any later round re-finalizes it.
  auto combine = [&](const std::vector<const QueryResult*>& parts) {
    if (plan.combiner.has_value()) {
      return plan.combiner->Combine(parts, policy.confidence);
    }
    QueryResult out = std::move(*cached.front());
    cached.front().reset();
    return out;
  };
  // Normalized per-pipeline shares of the joint error, for PipelineOutcome.
  auto contributions_over = [&](const QueryResult& combined,
                                const std::vector<const QueryResult*>& parts) {
    std::vector<double> shares_of_error(pipes.size(), 0.0);
    if (!plan.combiner.has_value() || !may_stop_early) {
      return shares_of_error;
    }
    shares_of_error = AttributeJointError(*plan.combiner, combined, parts,
                                          policy.relative, policy.confidence);
    double total = 0.0;
    for (double c : shares_of_error) {
      total += c;
    }
    if (total > 0.0) {
      for (double& c : shares_of_error) {
        c /= total;
      }
    }
    return shares_of_error;
  };

  // Set once PlanOptions::cancel reads true at a round boundary; the round
  // that observes it advances nothing and returns the consumed-prefix answer.
  bool cancel_seen = false;

  auto finish = [&](QueryResult result, const StopPolicy::Decision& decision,
                    bool evaluated, const std::vector<double>& contributions) {
    PlanResult out;
    out.result = std::move(result);
    out.cancelled = cancel_seen;
    out.pipelines.reserve(pipes.size());
    for (size_t i = 0; i < pipes.size(); ++i) {
      const ScanPipeline& pipe = *pipes[i];
      PipelineOutcome stats;
      stats.blocks_total = pipe.blocks_total();
      stats.blocks_consumed = pipe.blocks_consumed();
      stats.rows_consumed = pipe.rows_consumed();
      stats.rows_matched = pipe.rows_matched();
      stats.bytes_scanned = pipe.bytes_scanned();
      stats.bytes_decoded = pipe.bytes_decoded();
      stats.reused_probe = pipe.precomputed();
      stats.scheduled_rounds = scheduler.rounds(i);
      stats.error_contribution = i < contributions.size() ? contributions[i] : 0.0;
      out.pipelines.push_back(stats);
      out.blocks_consumed += stats.blocks_consumed;
      out.blocks_total += stats.blocks_total;
      out.rows_consumed += stats.rows_consumed;
      out.stopped_early = out.stopped_early || !pipe.exhausted();
      if (options.export_state) {
        out.states.push_back(pipe.ExportState());
      }
    }
    if (evaluated) {
      out.bound_met = decision.bound_met;
      out.achieved_error = decision.achieved_error;
    } else if (may_stop_early) {
      out.achieved_error = MaxEstimateError(FlattenEstimates(out.result),
                                            policy.relative, policy.confidence);
    }
    return out;
  };

  // Previous round's combined answer and snapshots, the scheduler's
  // attribution input. `parts` points into `cached` entries, which only
  // snapshot_all() overwrites (in place) — except the single-pipeline
  // combine() move-out, a path on which `parts` is never read again.
  QueryResult combined;
  std::vector<const QueryResult*> parts;
  bool have_combined = false;
  for (;;) {
    // Cancellation is observed only here, at the round boundary: a fired flag
    // grants nothing this round, so the plan returns the partial answer over
    // exactly the blocks consumed so far (the §4.4 charge downstream).
    cancel_seen = cancel_seen ||
                  (options.cancel != nullptr &&
                   options.cancel->load(std::memory_order_relaxed));
    // One round: the scheduler decides who advances (uniform: every
    // unfinished pipeline in index order; adaptive past the fairness floor:
    // the worst joint-error contributor). The interleave is a pure function
    // of the batch size, the pipeline block counts, and the consumed-prefix
    // snapshots — never of thread scheduling.
    const std::vector<ScheduleGrant> grants =
        cancel_seen ? std::vector<ScheduleGrant>{}
                    : scheduler.NextRound(pipes, have_combined ? &combined : nullptr,
                                          have_combined ? &parts : nullptr);
    for (const ScheduleGrant& grant : grants) {
      ScanPipeline& pipe = *pipes[grant.pipeline];
      const uint64_t before = pipe.blocks_consumed();
      pipe.Advance(grant.blocks);
      scheduler.OnAdvanced(grant.pipeline, pipe.blocks_consumed() - before,
                           pipe.exact());
    }
    const bool advanced = !grants.empty();
    bool all_complete = true;
    uint64_t total_consumed = 0;
    double total_matched = 0.0;
    for (const auto& pipe : pipes) {
      all_complete = all_complete && pipe->complete();
      total_consumed += pipe->blocks_consumed();
      total_matched += static_cast<double>(pipe->rows_matched());
    }
    // A dry pool stalls the plan: no sample pipeline may draw further blocks
    // and every one is past its smallest-resolution floor — a budget stop.
    const bool stalled = scheduler.Stalled(pipes);

    if (!needs_partials) {
      if (advanced && !all_complete && !stalled) {
        continue;
      }
      auto snaps = snapshot_all();
      if (!snaps.ok()) {
        return snaps.status();
      }
      return finish(combine(*snaps), StopPolicy::Decision{}, /*evaluated=*/false,
                    {});
    }

    // Materialize the combined partial answer over every pipeline's consumed
    // prefix and evaluate the joint stopping rule on it.
    auto snaps = snapshot_all();
    if (!snaps.ok()) {
      return snaps.status();
    }
    parts = std::move(snaps.value());
    combined = combine(parts);
    have_combined = true;
    const StopPolicy::Decision decision =
        policy.Evaluate(FlattenEstimates(combined), total_consumed, total_matched);
    // The joint stop guard: every pipeline's prefix must be statistically
    // sound (past its smallest-resolution boundary; exact pipelines must have
    // run to completion) before the union bound may end the plan.
    bool can_stop = error_stopping;
    for (const auto& pipe : pipes) {
      can_stop = can_stop && pipe->CanErrorStop();
    }
    const bool error_stop = decision.stop && can_stop;
    const bool returning = all_complete || error_stop || stalled || !advanced;

    if (options.progress) {
      options.progress(combined, ProgressOver(pipes, decision, returning));
    }
    if (returning) {
      const std::vector<double> contributions = contributions_over(combined, parts);
      return finish(std::move(combined), decision, /*evaluated=*/true, contributions);
    }
  }
}

}  // namespace blink
