#include "src/plan/query_plan.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace blink {
namespace {

// Aggregate progress over the whole plan (all pipelines).
StreamProgress ProgressOver(const std::vector<std::unique_ptr<ScanPipeline>>& pipes,
                            const StopPolicy::Decision& decision, bool final_batch) {
  StreamProgress p;
  for (const auto& pipe : pipes) {
    p.blocks_consumed += pipe->blocks_consumed();
    p.blocks_total += pipe->blocks_total();
    p.rows_consumed += pipe->rows_consumed();
    p.rows_total += pipe->rows_total();
  }
  p.achieved_error = decision.achieved_error;
  p.bound_met = decision.bound_met;
  p.final_batch = final_batch;
  return p;
}

}  // namespace

Result<PlanResult> ExecutePlan(const QueryPlan& plan, const PlanOptions& options) {
  if (plan.pipelines.empty()) {
    return Status::InvalidArgument("plan has no pipelines");
  }
  if (plan.pipelines.size() > 1 && !plan.combiner.has_value()) {
    return Status::InvalidArgument("multi-pipeline plan has no union combiner");
  }

  StopPolicy policy = options.policy;
  policy.max_blocks = 0;  // budgets are per-pipeline (PipelineSpec::max_blocks)

  // An error stop is only meaningful when some pipeline scans a sample; a
  // plan made purely of exact scans (the EXACT fallback) never stops early.
  bool any_sample = false;
  bool any_budget = false;
  for (const auto& spec : plan.pipelines) {
    any_sample = any_sample || !spec.dataset.is_exact();
    any_budget = any_budget || (!spec.dataset.is_exact() && spec.max_blocks > 0);
  }
  const bool error_stopping = policy.target_error > 0.0 && any_sample;
  const bool may_stop_early = error_stopping || any_budget;
  // Combined partial answers must be materialized between rounds for the
  // joint error rule and for progress callbacks; bare budgets only need the
  // final snapshots, so they skip the per-round re-finalization entirely.
  const bool needs_partials = error_stopping || options.progress != nullptr;

  std::vector<std::unique_ptr<ScanPipeline>> pipes;
  pipes.reserve(plan.pipelines.size());
  for (const auto& spec : plan.pipelines) {
    auto pipe = std::make_unique<ScanPipeline>();
    BLINK_RETURN_IF_ERROR(pipe->Init(spec, options.exec, may_stop_early));
    pipes.push_back(std::move(pipe));
  }

  // Per-pipeline round-robin share: at least one batch's worth of work per
  // worker so every round saturates the thread fan-out. 0 (or no partials
  // needed) drives each pipeline in one maximal batch.
  auto round_share = [&](const ScanPipeline& pipe) -> uint64_t {
    if (!needs_partials || options.batch_blocks == 0) {
      return pipe.blocks_total();
    }
    const uint64_t workers = std::max<uint64_t>(
        1, std::min<uint64_t>(options.exec.num_threads, pipe.blocks_total()));
    return std::max<uint64_t>(options.batch_blocks, workers);
  };

  // Snapshots of completed pipelines are immutable; freeze them so later
  // rounds only re-finalize the pipelines still scanning and combine the
  // finished ones by reference, never by copy. `fresh` owns the still-live
  // snapshots of one round (reserved up front: growing must not move the
  // elements `parts` points into).
  std::vector<std::optional<QueryResult>> frozen(pipes.size());
  std::vector<QueryResult> fresh;
  auto snapshot_all = [&]() -> Result<std::vector<const QueryResult*>> {
    fresh.clear();
    fresh.reserve(pipes.size());
    std::vector<const QueryResult*> parts;
    parts.reserve(pipes.size());
    for (size_t i = 0; i < pipes.size(); ++i) {
      if (!frozen[i].has_value()) {
        auto snap = pipes[i]->Snapshot();
        if (!snap.ok()) {
          return snap.status();
        }
        if (pipes[i]->complete()) {
          frozen[i] = std::move(snap.value());
        } else {
          fresh.push_back(std::move(snap.value()));
          parts.push_back(&fresh.back());
          continue;
        }
      }
      parts.push_back(&*frozen[i]);
    }
    return parts;
  };
  // The combined answer of the current round. A 1-pipeline plan hands its
  // only snapshot through untouched; moving out of the backing store is safe
  // because a single complete pipeline always ends the drive this round.
  auto combine = [&](const std::vector<const QueryResult*>& parts) {
    if (plan.combiner.has_value()) {
      return plan.combiner->Combine(parts, policy.confidence);
    }
    return fresh.empty() ? std::move(*frozen.front()) : std::move(fresh.front());
  };

  auto finish = [&](QueryResult result, const StopPolicy::Decision& decision,
                    bool evaluated) {
    PlanResult out;
    out.result = std::move(result);
    out.pipelines.reserve(pipes.size());
    for (const auto& pipe : pipes) {
      PipelineOutcome stats;
      stats.blocks_total = pipe->blocks_total();
      stats.blocks_consumed = pipe->blocks_consumed();
      stats.rows_consumed = pipe->rows_consumed();
      stats.rows_matched = pipe->rows_matched();
      stats.reused_probe = pipe->precomputed();
      out.pipelines.push_back(stats);
      out.blocks_consumed += stats.blocks_consumed;
      out.blocks_total += stats.blocks_total;
      out.rows_consumed += stats.rows_consumed;
      out.stopped_early = out.stopped_early || !pipe->exhausted();
    }
    if (evaluated) {
      out.bound_met = decision.bound_met;
      out.achieved_error = decision.achieved_error;
    } else if (may_stop_early) {
      out.achieved_error = MaxEstimateError(FlattenEstimates(out.result),
                                            policy.relative, policy.confidence);
    }
    return out;
  };

  for (;;) {
    // One round: every unfinished pipeline, in index order, consumes its
    // share of blocks. The interleave is a fixed function of the batch size
    // and the pipeline block counts — never of thread scheduling.
    for (auto& pipe : pipes) {
      if (!pipe->complete()) {
        pipe->Advance(round_share(*pipe));
      }
    }
    bool all_complete = true;
    uint64_t total_consumed = 0;
    double total_matched = 0.0;
    for (const auto& pipe : pipes) {
      all_complete = all_complete && pipe->complete();
      total_consumed += pipe->blocks_consumed();
      total_matched += static_cast<double>(pipe->rows_matched());
    }

    if (!needs_partials) {
      if (!all_complete) {
        continue;
      }
      auto parts = snapshot_all();
      if (!parts.ok()) {
        return parts.status();
      }
      return finish(combine(*parts), StopPolicy::Decision{}, /*evaluated=*/false);
    }

    // Materialize the combined partial answer over every pipeline's consumed
    // prefix and evaluate the joint stopping rule on it.
    auto parts = snapshot_all();
    if (!parts.ok()) {
      return parts.status();
    }
    QueryResult combined = combine(*parts);
    const StopPolicy::Decision decision =
        policy.Evaluate(FlattenEstimates(combined), total_consumed, total_matched);
    // The joint stop guard: every pipeline's prefix must be statistically
    // sound (past its smallest-resolution boundary; exact pipelines must have
    // run to completion) before the union bound may end the plan.
    bool can_stop = error_stopping;
    for (const auto& pipe : pipes) {
      can_stop = can_stop && pipe->CanErrorStop();
    }
    const bool error_stop = decision.stop && can_stop;
    const bool returning = all_complete || error_stop;

    if (options.progress) {
      options.progress(combined, ProgressOver(pipes, decision, returning));
    }
    if (returning) {
      return finish(std::move(combined), decision, /*evaluated=*/true);
    }
  }
}

}  // namespace blink
