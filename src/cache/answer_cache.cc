#include "src/cache/answer_cache.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "src/util/string_util.h"

namespace blink {
namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kResume:
      return "resume";
    case CacheOutcome::kHit:
      return "hit";
  }
  return "miss";
}

AnswerCache::AnswerCache(size_t capacity, size_t num_shards) {
  capacity_ = std::max<size_t>(1, capacity);
  num_shards = std::max<size_t>(1, std::min(num_shards, capacity_));
  per_shard_ = (capacity_ + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CacheEntry> AnswerCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void AnswerCache::Insert(const std::string& key,
                         std::shared_ptr<const CacheEntry> entry) {
  if (entry == nullptr) {
    return;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AnswerCache::RecordOutcome(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss:
      misses_.fetch_add(1, std::memory_order_relaxed);
      return;
    case CacheOutcome::kResume:
      resumes_.fetch_add(1, std::memory_order_relaxed);
      return;
    case CacheOutcome::kHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      return;
  }
}

AnswerCacheStats AnswerCache::stats() const {
  AnswerCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.resumes = resumes_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

size_t AnswerCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

std::string AnswerCacheKey(const SelectStatement& stmt, uint64_t table_generation,
                           uint32_t morsel_rows, bool compressed_scan,
                           bool filter_encoded_views) {
  std::string key;
  key.reserve(128);
  key += "t=";
  key += AsciiToLower(stmt.table);
  key += "|g=";
  key += std::to_string(table_generation);
  key += "|m=";
  key += std::to_string(morsel_rows);
  key += "|st=";
  key += compressed_scan ? '1' : '0';
  key += filter_encoded_views ? '1' : '0';
  if (stmt.join.has_value()) {
    key += "|j=";
    key += AsciiToLower(stmt.join->table);
    key += '.';
    key += AsciiToLower(stmt.join->left_column);
    key += '=';
    key += AsciiToLower(stmt.join->right_column);
  }
  key += "|s=";
  for (const SelectItem& item : stmt.items) {
    if (item.is_aggregate) {
      key += AggFuncName(item.agg.func);
      key += '(';
      key += item.agg.count_star ? "*" : AsciiToLower(item.agg.column);
      if (item.agg.func == AggFunc::kQuantile) {
        key += ',';
        key += FormatDouble(item.agg.quantile_p);
      }
      key += ')';
    } else {
      key += AsciiToLower(item.column);
    }
    if (!item.alias.empty()) {
      key += " as ";
      key += item.alias;
    }
    key += ',';
  }
  key += "|gb=";
  for (const std::string& col : stmt.group_by) {
    key += AsciiToLower(col);
    key += ',';
  }
  if (stmt.having.has_value()) {
    key += "|h=";
    key += stmt.having->CanonicalString();
  }
  key += "|w=";
  key += stmt.where.has_value() ? stmt.where->CanonicalString() : "";
  if (stmt.report_error_columns) {
    key += "|e=1";
  }
  return key;
}

}  // namespace blink
