// Error-aware answer cache: consumed-prefix snapshots keyed by query shape.
//
// BlinkDB's §4.4 insight — work done for one query prefix is reusable — is
// generalized here ACROSS queries: a bounded query that streamed k blocks of
// a sample leaves behind its per-pipeline running accumulators and n_h(prefix)
// tallies. A later query with the same shape (table generation, canonical
// predicate, group/aggregate shape) either
//   - HIT: the cached answer's achieved error already meets the incoming
//     bound (or the cached scan is complete) → serve the stored FINAL
//     instantly, consuming zero blocks, or
//   - RESUME: seed fresh ScanPipelines with the snapshots and stream on from
//     block k instead of block 0 (strictly fewer blocks than cold), or
//   - MISS: execute cold and (when cacheable) insert the exported state.
//
// Correctness rests on two invariants:
//   1. A pipeline's accumulators depend only on its consumed block count
//      (src/plan/scan_pipeline.h), so restore-then-advance is bit-identical
//      to a cold scan of the same prefix.
//   2. Error-bounded streamed scans always run over the family's largest
//      resolution (LogicalSample(0)), so the snapshot's dataset does not
//      depend on the bound — one snapshot serves every future bound.
// Staleness is handled by keying on the table's catalog generation, which
// every mutation (ReplaceTable / CompressStorage / BuildSamples /
// AppendAndMaintain) bumps.
#ifndef BLINKDB_CACHE_ANSWER_CACHE_H_
#define BLINKDB_CACHE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/exec/executor.h"
#include "src/plan/scan_pipeline.h"
#include "src/sql/ast.h"

namespace blink {

// How a lookup was ultimately served; rendered into the wire frames' `cache`
// field ("hit" / "resume" / "miss", empty when no cache is configured).
enum class CacheOutcome { kMiss, kResume, kHit };

const char* CacheOutcomeName(CacheOutcome outcome);

// One pipeline's reusable execution state: enough to rebuild its PipelineSpec
// against the same sample family and seed the scan at the cached prefix.
struct CachedPipeline {
  // The conjunctive sub-statement the pipeline executed (for union plans the
  // DNF disjunct with the combiner's helper COUNT already appended).
  SelectStatement stmt;
  // Which family the scan ran over, by store identity (re-looked-up at resume
  // so a dropped family turns the entry into a miss).
  bool is_uniform = false;
  std::vector<std::string> family_columns;  // stratified key, lower + sorted
  std::string family_name;                  // display name for the report
  size_t resolution = 0;                    // LogicalSample index scanned
  // Consumed-prefix state; null when the pipeline was answered by a §4.4
  // probe (then `precomputed` carries the reusable answer instead).
  std::shared_ptr<const PipelineSnapshot> snapshot;
  std::shared_ptr<const QueryResult> precomputed;
};

// A cached answer: the FINAL served on a hit plus the per-pipeline state a
// near-miss resumes from. Immutable once inserted (shared_ptr<const>).
struct CacheEntry {
  QueryResult result;           // the combined FINAL answer
  double result_confidence = 0.95;  // confidence the entry was computed at
  bool complete = false;        // every pipeline consumed its whole dataset
  bool resumable = false;       // every pipeline carries a snapshot
  uint64_t blocks_consumed = 0;  // totals across pipelines, for reuse credit
  uint64_t blocks_total = 0;
  uint64_t rows_consumed = 0;
  // Report fields a hit reproduces without re-planning.
  std::string family;
  size_t resolution = 0;
  uint64_t cap = 0;
  double projected_error = 0.0;
  size_t num_subqueries = 1;
  bool rewrite_fallback = false;
  std::vector<CachedPipeline> pipelines;
};

struct AnswerCacheStats {
  uint64_t hits = 0;
  uint64_t resumes = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

// Bounded, sharded LRU. Thread-safe: lookups and inserts from concurrent
// sessions take only the shard's mutex; entries are shared immutably.
class AnswerCache {
 public:
  explicit AnswerCache(size_t capacity = 256, size_t num_shards = 8);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  // Returns the entry (refreshing its LRU position) or null.
  std::shared_ptr<const CacheEntry> Lookup(const std::string& key);

  // Inserts or replaces; evicts the shard's LRU tail past capacity.
  void Insert(const std::string& key, std::shared_ptr<const CacheEntry> entry);

  // Called by the runtime once a lookup's outcome is known.
  void RecordOutcome(CacheOutcome outcome);

  AnswerCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<std::string, std::shared_ptr<const CacheEntry>>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::shared_ptr<const CacheEntry>>>::
                           iterator>
        index;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;   // total entries across shards
  size_t per_shard_;  // per-shard bound (capacity split evenly, rounded up)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

// The cache key for a statement over a table at a catalog generation. Keyed
// on everything that determines the ANSWER and the SCAN DECOMPOSITION:
// table + generation, morsel size, storage path flags, join, select shape
// (aggregates, aliases, error columns), GROUP BY, HAVING, and the WHERE
// clause's order-insensitive Predicate::CanonicalString. Deliberately
// EXCLUDED: the error bound and confidence — error-bounded streamed scans
// over a family always consume its largest resolution in prefix order, so
// one snapshot serves every bound, and confidence only parameterizes error
// rendering (never the estimates themselves).
std::string AnswerCacheKey(const SelectStatement& stmt, uint64_t table_generation,
                           uint32_t morsel_rows, bool compressed_scan,
                           bool filter_encoded_views);

}  // namespace blink

#endif  // BLINKDB_CACHE_ANSWER_CACHE_H_
