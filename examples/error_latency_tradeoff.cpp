// Interactive exploration of the error/latency trade-off (§2: "she can
// progressively tweak the query bounds until the desired accuracy is
// achieved"). Sweeps a query across error bounds 1%..32% and time budgets
// 1..10 s and prints the resulting frontier, including which sample
// resolution the ELP chose at every point.
//
// Build & run:  ./build/examples/error_latency_tradeoff
#include <cstdio>
#include <string>

#include "src/api/blinkdb.h"
#include "src/workload/conviva.h"

using namespace blink;

int main() {
  ConvivaConfig config;
  config.num_rows = 300'000;
  const Table table = GenerateConvivaTable(config);

  BlinkDB db;
  // The 300k-row stand-in plays a 500 GB table.
  const double bytes = static_cast<double>(table.num_rows()) * table.EstimatedBytesPerRow();
  if (Status s = db.RegisterTable("sessions", GenerateConvivaTable(config), 5e11 / bytes);
      !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PlannerConfig planner;
  planner.budget_fraction = 0.5;
  planner.cap_k = 2'000;
  planner.uniform_fraction = 0.2;
  planner.max_resolutions = 8;
  if (auto plan = db.BuildSamples("sessions", ConvivaTemplates(), planner); !plan.ok()) {
    std::printf("sampling failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  const std::string base = "SELECT AVG(jointimems) FROM sessions WHERE dt = 5";

  std::printf("Error-bound sweep: %s ERROR WITHIN e%% AT CONFIDENCE 95%%\n", base.c_str());
  std::printf("%8s %14s %12s %10s %12s\n", "e (%)", "latency", "rows read", "res", "achieved");
  for (int e : {4, 8, 16, 32}) {
    auto answer = db.Query(base + " ERROR WITHIN " + std::to_string(e) +
                           "% AT CONFIDENCE 95%");
    if (!answer.ok()) {
      std::printf("query failed: %s\n", answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d %13.2fs %12llu %10zu %11.2f%%\n", e, answer->report.total_latency,
                static_cast<unsigned long long>(answer->report.rows_read),
                answer->report.resolution, 100.0 * answer->report.achieved_error);
  }

  std::printf("\nTime-budget sweep: %s WITHIN t SECONDS\n", base.c_str());
  std::printf("%8s %14s %12s %10s %12s\n", "t (s)", "latency", "rows read", "res", "error");
  for (int t : {1, 2, 3, 5, 8, 10}) {
    auto answer = db.Query(base + " WITHIN " + std::to_string(t) + " SECONDS");
    if (!answer.ok()) {
      std::printf("query failed: %s\n", answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d %13.2fs %12llu %10zu %11.2f%%\n", t, answer->report.total_latency,
                static_cast<unsigned long long>(answer->report.rows_read),
                answer->report.resolution, 100.0 * answer->report.achieved_error);
  }

  // Show one full Error-Latency Profile, the §4.2 artifact.
  auto answer = db.Query(base + " ERROR WITHIN 5% AT CONFIDENCE 95%");
  if (!answer.ok()) {
    std::printf("query failed: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nELP for the 5%% run (family %s):\n", answer->report.family.c_str());
  std::printf("%12s %12s %16s %16s\n", "resolution", "rows", "proj. error", "proj. latency");
  for (const auto& point : answer->report.elp) {
    std::printf("%12zu %12llu %15.2f%% %15.2fs\n", point.resolution,
                static_cast<unsigned long long>(point.rows),
                100.0 * point.projected_error, point.projected_latency);
  }
  return 0;
}
