// Quickstart: the BlinkDB workflow in ~80 lines.
//
//   1. Register a fact table.
//   2. Build samples for your workload under a storage budget (offline, §3).
//   3. Ask SQL queries with error or time bounds (online, §4).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/api/blinkdb.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

using namespace blink;

int main() {
  // --- 1. A media-sessions table (the paper's running example, Fig 2). ----
  Table sessions(Schema({{"session", DataType::kInt64},
                         {"genre", DataType::kString},
                         {"os", DataType::kString},
                         {"city", DataType::kString},
                         {"url", DataType::kString},
                         {"sessiontime", DataType::kDouble}}));
  Rng rng(7);
  const char* genres[] = {"western", "comedy", "drama", "news"};
  const char* oses[] = {"Win7", "OSX", "iOS", "Android"};
  sessions.Reserve(200'000);
  for (int64_t i = 0; i < 200'000; ++i) {
    sessions.AppendInt(0, i);
    sessions.AppendString(1, genres[rng.NextBounded(4)]);
    sessions.AppendString(2, oses[rng.NextBounded(4)]);
    // Zipf-ish city popularity via nested bounded draws.
    sessions.AppendString(3, "city_" + std::to_string(rng.NextBounded(rng.NextBounded(499) + 1)));
    sessions.AppendString(4, "url_" + std::to_string(rng.NextBounded(2'000)));
    sessions.AppendDouble(5, 30.0 + rng.NextDouble() * 600.0);
    sessions.CommitRow();
  }

  BlinkDB db;
  // Pretend the 200k-row stand-in is a 200 GB production table. (The
  // stand-in's distinct-values-to-rows ratio is far higher than a real
  // trillion-byte table's, so its smallest stratified samples are a larger
  // fraction of the data; a modest scale keeps the simulation honest.)
  const double bytes = 200'000 * sessions.EstimatedBytesPerRow();
  if (Status s = db.RegisterTable("sessions", std::move(sessions), 2e11 / bytes); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 2. Offline sample creation for the expected workload. --------------
  std::vector<WorkloadTemplate> workload = {
      {{"city"}, 0.4}, {{"genre", "city"}, 0.3}, {{"os"}, 0.2}, {{"url"}, 0.1}};
  PlannerConfig planner;
  planner.budget_fraction = 0.5;  // samples may use 50% of the table's size
  planner.cap_k = 150;
  planner.uniform_fraction = 0.1;
  planner.max_resolutions = 8;
  auto plan = db.BuildSamples("sessions", workload, planner);
  if (!plan.ok()) {
    std::printf("sampling failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Built %zu sample families (total %s, budget %s):\n", plan->families.size(),
              HumanBytes(plan->total_bytes).c_str(), HumanBytes(plan->budget_bytes).c_str());
  for (const auto& family : plan->families) {
    const std::string name =
        family.columns.empty() ? "uniform" : "{" + Join(family.columns, ",") + "}";
    std::printf("  - %-24s (%s)\n", name.c_str(), HumanBytes(family.storage_bytes).c_str());
  }

  // --- 3. Bounded queries. -------------------------------------------------
  const char* error_bounded =
      "SELECT os, COUNT(*) FROM sessions WHERE genre = 'western' "
      "GROUP BY os ERROR WITHIN 10% AT CONFIDENCE 95%";
  auto answer = db.Query(error_bounded);
  if (!answer.ok()) {
    std::printf("query failed: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ1 (error-bounded): %s\n%s", error_bounded,
              answer->result.ToString().c_str());
  std::printf("  answered from %s sample, resolution %zu, %llu rows, "
              "simulated latency %s (vs %s exact)\n",
              answer->report.family.c_str(), answer->report.resolution,
              static_cast<unsigned long long>(answer->report.rows_read),
              HumanSeconds(answer->report.total_latency).c_str(),
              HumanSeconds(db.QueryExact("SELECT COUNT(*) FROM sessions")
                               ->report.total_latency)
                  .c_str());

  const char* time_bounded =
      "SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM sessions "
      "WHERE city = 'city_3' WITHIN 3 SECONDS";
  auto timed = db.Query(time_bounded);
  if (!timed.ok()) {
    std::printf("query failed: %s\n", timed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ2 (time-bounded): %s\n%s", time_bounded, timed->result.ToString().c_str());
  std::printf("  budget 3.0s, simulated latency %s (%s); relative error %.2f%%\n",
              HumanSeconds(timed->report.total_latency).c_str(),
              timed->report.total_latency <= 3.0 ? "met" : "best effort",
              100.0 * timed->report.achieved_error);
  return 0;
}
