// Quickstart: the BlinkDB workflow in ~100 lines.
//
//   1. Register a fact table.
//   2. Build samples for your workload under a storage budget (offline, §3).
//   3. Ask SQL queries with error or time bounds (online, §4).
//   4. Watch a bounded query converge through partial answers — and cancel
//      it mid-flight (what the streaming server does over TCP; see
//      docs/CLIENT_GUIDE.md for the blinkdb_server + blinkdb_cli version of
//      this same flow, and docs/PROTOCOL.md for the wire format).
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <cstdio>

#include "src/api/blinkdb.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

using namespace blink;

int main() {
  // --- 1. A media-sessions table (the paper's running example, Fig 2). ----
  Table sessions(Schema({{"session", DataType::kInt64},
                         {"genre", DataType::kString},
                         {"os", DataType::kString},
                         {"city", DataType::kString},
                         {"url", DataType::kString},
                         {"sessiontime", DataType::kDouble}}));
  Rng rng(7);
  const char* genres[] = {"western", "comedy", "drama", "news"};
  const char* oses[] = {"Win7", "OSX", "iOS", "Android"};
  sessions.Reserve(200'000);
  for (int64_t i = 0; i < 200'000; ++i) {
    sessions.AppendInt(0, i);
    sessions.AppendString(1, genres[rng.NextBounded(4)]);
    sessions.AppendString(2, oses[rng.NextBounded(4)]);
    // Zipf-ish city popularity via nested bounded draws.
    sessions.AppendString(3, "city_" + std::to_string(rng.NextBounded(rng.NextBounded(499) + 1)));
    sessions.AppendString(4, "url_" + std::to_string(rng.NextBounded(2'000)));
    sessions.AppendDouble(5, 30.0 + rng.NextDouble() * 600.0);
    sessions.CommitRow();
  }

  // Finer streaming knobs than the defaults, so step 4's partial answers
  // are visible: 512-row blocks and 4-block rounds between stopping-rule
  // evaluations (answers are bit-identical for any setting).
  BlinkDbOptions options;
  options.runtime.morsel_rows = 512;
  options.runtime.stream_batch_blocks = 4;
  BlinkDB db(options);
  // Pretend the 200k-row stand-in is a 200 GB production table. (The
  // stand-in's distinct-values-to-rows ratio is far higher than a real
  // trillion-byte table's, so its smallest stratified samples are a larger
  // fraction of the data; a modest scale keeps the simulation honest.)
  const double bytes = 200'000 * sessions.EstimatedBytesPerRow();
  if (Status s = db.RegisterTable("sessions", std::move(sessions), 2e11 / bytes); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 2. Offline sample creation for the expected workload. --------------
  std::vector<WorkloadTemplate> workload = {
      {{"city"}, 0.4}, {{"genre", "city"}, 0.3}, {{"os"}, 0.2}, {{"url"}, 0.1}};
  PlannerConfig planner;
  planner.budget_fraction = 0.5;  // samples may use 50% of the table's size
  planner.cap_k = 150;
  planner.uniform_fraction = 0.1;
  planner.max_resolutions = 8;
  auto plan = db.BuildSamples("sessions", workload, planner);
  if (!plan.ok()) {
    std::printf("sampling failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Built %zu sample families (total %s, budget %s):\n", plan->families.size(),
              HumanBytes(plan->total_bytes).c_str(), HumanBytes(plan->budget_bytes).c_str());
  for (const auto& family : plan->families) {
    const std::string name =
        family.columns.empty() ? "uniform" : "{" + Join(family.columns, ",") + "}";
    std::printf("  - %-24s (%s)\n", name.c_str(), HumanBytes(family.storage_bytes).c_str());
  }

  // --- 3. Bounded queries. -------------------------------------------------
  const char* error_bounded =
      "SELECT os, COUNT(*) FROM sessions WHERE genre = 'western' "
      "GROUP BY os ERROR WITHIN 10% AT CONFIDENCE 95%";
  auto answer = db.Query(error_bounded);
  if (!answer.ok()) {
    std::printf("query failed: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ1 (error-bounded): %s\n%s", error_bounded,
              answer->result.ToString().c_str());
  std::printf("  answered from %s sample, resolution %zu, %llu rows, "
              "simulated latency %s (vs %s exact)\n",
              answer->report.family.c_str(), answer->report.resolution,
              static_cast<unsigned long long>(answer->report.rows_read),
              HumanSeconds(answer->report.total_latency).c_str(),
              HumanSeconds(db.QueryExact("SELECT COUNT(*) FROM sessions")
                               ->report.total_latency)
                  .c_str());

  const char* time_bounded =
      "SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM sessions "
      "WHERE city = 'city_3' WITHIN 3 SECONDS";
  auto timed = db.Query(time_bounded);
  if (!timed.ok()) {
    std::printf("query failed: %s\n", timed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ2 (time-bounded): %s\n%s", time_bounded, timed->result.ToString().c_str());
  std::printf("  budget 3.0s, simulated latency %s (%s); relative error %.2f%%\n",
              HumanSeconds(timed->report.total_latency).c_str(),
              timed->report.total_latency <= 3.0 ? "met" : "best effort",
              100.0 * timed->report.achieved_error);

  // --- 4. Partial answers + cancellation. ----------------------------------
  // A bounded query streams: the progress callback fires after every round
  // of blocks with the running estimate and its error. Over TCP this is
  // exactly one PARTIAL frame per callback (docs/PROTOCOL.md). Here we also
  // cancel after the third round — the query returns its best partial
  // answer, and §4.4 charges only the blocks actually consumed.
  // sessiontime is not a stratification column, so this runs off the
  // uniform sample and the error shrinks visibly round by round.
  const char* streamed =
      "SELECT COUNT(*) FROM sessions WHERE sessiontime > 600 "
      "ERROR WITHIN 1% AT CONFIDENCE 95%";
  std::printf("\nQ3 (streamed + cancelled): %s\n", streamed);
  std::atomic<bool> cancel{false};
  int rounds = 0;
  auto partial = db.Query(
      streamed,
      [&cancel, &rounds](const QueryResult& running, const StreamProgress& p) {
        if (p.final_batch) {
          return;
        }
        std::printf("  PARTIAL #%d blocks=%llu/%llu error=%.2f%%  %s ~ %.0f\n",
                    ++rounds, static_cast<unsigned long long>(p.blocks_consumed),
                    static_cast<unsigned long long>(p.blocks_total),
                    100.0 * p.achieved_error, "COUNT(*)",
                    running.rows.empty() ? 0.0 : running.rows[0].aggregates[0].value);
        if (rounds == 3) {
          cancel.store(true);  // a client pressed Ctrl-C / sent CANCEL
        }
      },
      &cancel);
  if (!partial.ok()) {
    std::printf("query failed: %s\n", partial.status().ToString().c_str());
    return 1;
  }
  std::printf("  cancelled=%s after %llu of %llu planned blocks; answer so far:\n%s",
              partial->report.cancelled ? "true" : "false",
              static_cast<unsigned long long>(partial->report.blocks_consumed),
              static_cast<unsigned long long>(
                  partial->report.pipeline_outcomes.empty()
                      ? partial->report.blocks_consumed
                      : partial->report.pipeline_outcomes[0].blocks_total),
              partial->result.ToString().c_str());
  std::printf("\nNext: serve this database over TCP — see docs/CLIENT_GUIDE.md\n");
  return 0;
}
