// TPC-H exploration with bounded queries, including a fact-to-dimension join
// (§2.1: joins are allowed when the dimension table is exact and in memory).
//
// Build & run:  ./build/examples/tpch_explorer
#include <cstdio>

#include "src/api/blinkdb.h"
#include "src/util/string_util.h"
#include "src/workload/tpch.h"

using namespace blink;

int main() {
  TpchConfig config;
  config.lineitem_rows = 300'000;
  const Table lineitem = GenerateLineitem(config);

  BlinkDB db;
  // Stand-in for the paper's 1 TB (scale factor 1000) TPC-H database.
  const double bytes =
      static_cast<double>(lineitem.num_rows()) * lineitem.EstimatedBytesPerRow();
  if (Status s = db.RegisterTable("lineitem", GenerateLineitem(config), 1e12 / bytes);
      !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = db.RegisterDimensionTable("orders", GenerateOrders(config)); !s.ok()) {
    std::printf("register orders failed: %s\n", s.ToString().c_str());
    return 1;
  }

  PlannerConfig planner;
  planner.budget_fraction = 0.5;
  planner.cap_k = 2'000;
  planner.uniform_fraction = 0.1;
  planner.max_resolutions = 8;
  auto plan = db.BuildSamples("lineitem", TpchTemplates(), planner);
  if (!plan.ok()) {
    std::printf("sampling failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("TPC-H sample families (50%% budget):\n");
  for (const auto& family : plan->families) {
    const std::string name =
        family.columns.empty() ? "uniform" : "{" + Join(family.columns, ",") + "}";
    std::printf("  - %-28s %s\n", name.c_str(), HumanBytes(family.storage_bytes).c_str());
  }

  // Pricing-summary style aggregation (Q1 flavor) with an error bound.
  auto q1 = db.Query(
      "SELECT returnflag, linestatus, SUM(extendedprice), AVG(discount), COUNT(*) "
      "FROM lineitem WHERE shipdate <= 2400 GROUP BY returnflag, linestatus "
      "ERROR WITHIN 5% AT CONFIDENCE 95%");
  if (!q1.ok()) {
    std::printf("q1 failed: %s\n", q1.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ1-style pricing summary (5%% error bound):\n%s",
              q1->result.ToString().c_str());
  std::printf("  [sample=%s latency=%s]\n", q1->report.family.c_str(),
              HumanSeconds(q1->report.total_latency).c_str());

  // Shipping-mode analysis with a time budget.
  auto q2 = db.Query(
      "SELECT shipmode, AVG(extendedprice) FROM lineitem "
      "WHERE quantity >= 30 GROUP BY shipmode WITHIN 3 SECONDS");
  if (!q2.ok()) {
    std::printf("q2 failed: %s\n", q2.status().ToString().c_str());
    return 1;
  }
  std::printf("\nShip-mode price profile (3 s budget):\n%s",
              q2->result.ToString().c_str());
  std::printf("  [sample=%s latency=%s error<=%.2f%%]\n", q2->report.family.c_str(),
              HumanSeconds(q2->report.total_latency).c_str(),
              100.0 * q2->report.achieved_error);

  // Join against the orders dimension: per-priority revenue.
  auto q3 = db.Query(
      "SELECT orderpriority, SUM(extendedprice) FROM lineitem "
      "JOIN orders ON orderkey = orderkey GROUP BY orderpriority "
      "ERROR WITHIN 10% AT CONFIDENCE 95%");
  if (!q3.ok()) {
    std::printf("q3 failed: %s\n", q3.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRevenue by order priority (join with orders):\n%s",
              q3->result.ToString().c_str());
  std::printf("  [sample=%s latency=%s]\n", q3->report.family.c_str(),
              HumanSeconds(q3->report.total_latency).c_str());
  return 0;
}
