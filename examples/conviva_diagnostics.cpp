// Conviva-style problem diagnosis (the paper's motivating scenario, §1):
// "in a web service, determine the subset of users who are affected by an
// outage or are experiencing poor quality of service based on the service
// provider or region" — fast, because profit loss is proportional to
// response time.
//
// This example loads the synthetic Conviva-like sessions table, builds
// samples, then runs the diagnosis workflow: a coarse sweep over countries,
// a drill-down into a specific ISP x city slice, and a comparison against
// the exact answer to show the accuracy/latency trade.
//
// Build & run:  ./build/examples/conviva_diagnostics
#include <cstdio>

#include "src/api/blinkdb.h"
#include "src/util/string_util.h"
#include "src/workload/conviva.h"

using namespace blink;

namespace {

void PrintAnswer(const char* label, const ApproxAnswer& answer) {
  std::printf("\n%s\n%s", label, answer.result.ToString().c_str());
  std::printf("  [sample=%s resolution=%zu rows=%llu latency=%s error<=%.2f%%]\n",
              answer.report.family.c_str(), answer.report.resolution,
              static_cast<unsigned long long>(answer.report.rows_read),
              HumanSeconds(answer.report.total_latency).c_str(),
              100.0 * answer.report.achieved_error);
}

}  // namespace

int main() {
  // Cardinalities sized so per-stratum row counts are meaningful at stand-in
  // scale (the real table has ~220k rows per (city, isp) pair; ours has ~200).
  ConvivaConfig config;
  config.num_rows = 400'000;
  config.num_cities = 100;
  config.num_isps = 20;
  config.num_countries = 50;
  const Table table = GenerateConvivaTable(config);

  BlinkDB db;
  // The 400k-row stand-in plays a 1 TB slice of the paper's 17 TB log.
  const double bytes = static_cast<double>(table.num_rows()) * table.EstimatedBytesPerRow();
  if (Status s = db.RegisterTable("sessions", GenerateConvivaTable(config), 1e12 / bytes);
      !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The operations team's diagnostic workload: slice by (city, isp), by
  // (country, day), and by day alone.
  std::vector<WorkloadTemplate> workload = {
      {{"city", "isp"}, 0.5}, {{"country", "dt"}, 0.3}, {{"dt"}, 0.2}};
  PlannerConfig planner;
  planner.budget_fraction = 0.5;
  planner.cap_k = 150;
  planner.max_columns_per_set = 3;
  planner.uniform_fraction = 0.05;
  planner.max_resolutions = 6;
  auto plan = db.BuildSamples("sessions", workload, planner);
  if (!plan.ok()) {
    std::printf("sampling failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Sample families under a 50%% budget:\n");
  for (const auto& family : plan->families) {
    const std::string name =
        family.columns.empty() ? "uniform" : "{" + Join(family.columns, ",") + "}";
    std::printf("  - %-28s %s\n", name.c_str(), HumanBytes(family.storage_bytes).c_str());
  }

  // Step 1: coarse sweep — which countries have elevated buffering? A time
  // bound keeps the dashboard interactive regardless of data size.
  auto sweep = db.Query(
      "SELECT country, AVG(bufferingms) AS buffering FROM sessions "
      "WHERE dt = 5 GROUP BY country HAVING buffering > 900 "
      "WITHIN 4 SECONDS");
  if (!sweep.ok()) {
    std::printf("sweep failed: %s\n", sweep.status().ToString().c_str());
    return 1;
  }
  PrintAnswer("Step 1 - countries with elevated buffering on day 5 (4 s budget):",
              *sweep);

  // Step 2: drill into one ISP x city slice with a tight error bound; the
  // stratified sample on (city, isp) answers rare slices precisely.
  auto drill = db.Query(
      "SELECT AVG(bitrate) FROM sessions WHERE isp = 'isp_2' AND city = 'city_7' "
      "ERROR WITHIN 10% AT CONFIDENCE 95%");
  if (!drill.ok()) {
    std::printf("drill failed: %s\n", drill.status().ToString().c_str());
    return 1;
  }
  PrintAnswer("Step 2 - bitrate for isp_2 in city_7 (10% error bound):", *drill);

  // Step 3: trust check — exact answer vs the approximation.
  auto exact = db.QueryExact(
      "SELECT AVG(bitrate) FROM sessions WHERE isp = 'isp_2' AND city = 'city_7'");
  if (!exact.ok()) {
    std::printf("exact failed: %s\n", exact.status().ToString().c_str());
    return 1;
  }
  const double approx_value = drill->result.rows[0].aggregates[0].value;
  const double true_value = exact->result.rows[0].aggregates[0].value;
  std::printf(
      "\nStep 3 - ground truth: exact=%.0f approx=%.0f (off by %.2f%%)\n"
      "  exact scan:  %s    approximate: %s    speedup: %.0fx\n",
      true_value, approx_value,
      true_value > 0 ? 100.0 * std::abs(approx_value - true_value) / true_value : 0.0,
      HumanSeconds(exact->report.total_latency).c_str(),
      HumanSeconds(drill->report.total_latency).c_str(),
      exact->report.total_latency / std::max(1e-9, drill->report.total_latency));
  return 0;
}
